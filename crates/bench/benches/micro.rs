//! Micro-benchmarks for the hot data structures: cache access, TLB probe,
//! radix walk, and Victima's probe (harness = false; a self-contained
//! timing loop keeps the workspace dependency-free).
//!
//! ```text
//! cargo bench --bench micro [filter]
//! ```

use mem_sim::{BlockKind, Cache, CacheConfig, Hierarchy, HierarchyConfig, MemClass, Policy, ReplacementCtx};
use page_table::{FrameAllocator, RadixPageTable};
use std::hint::black_box;
use std::time::Instant;
use tlb_sim::{PageTableWalker, SetAssocTlb, TlbConfig, TlbEntry};
use victima::{tlb_block, Victima};
use vm_types::{Asid, PageSize, PhysAddr, SplitMix64, VirtAddr};

/// Times `iters` calls of `f` after a short warm-up and prints ns/op.
fn bench(filter: &[String], name: &str, iters: u64, mut f: impl FnMut()) {
    if !filter.is_empty() && !filter.iter().any(|p| name.contains(p.as_str())) {
        return;
    }
    for _ in 0..iters / 10 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    println!(
        "{name:<28} {:>9.1} ns/op   ({iters} iters, {:.2}s)",
        elapsed.as_nanos() as f64 / iters as f64,
        elapsed.as_secs_f64()
    );
}

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
    let ctx = ReplacementCtx::default();

    let mut cache = Cache::new(
        CacheConfig { name: "L2", size_bytes: 2 << 20, ways: 16, block_bytes: 64, latency: 16 },
        Policy::srrip(),
    );
    let mut rng = SplitMix64::new(1);
    bench(&filter, "cache_access_random", 2_000_000, || {
        let pa = PhysAddr::new(rng.next_below(64 << 20) & !63);
        if !cache.access_data(black_box(pa), false, &ctx) {
            cache.fill_data(pa, false, false, &ctx);
        }
    });

    let mut hot_cache = Cache::new(
        CacheConfig { name: "L2", size_bytes: 2 << 20, ways: 16, block_bytes: 64, latency: 16 },
        Policy::srrip(),
    );
    let mut rng_h = SplitMix64::new(11);
    // Working set half the cache: after warm-up, every access hits.
    bench(&filter, "cache_access_hit", 4_000_000, || {
        let pa = PhysAddr::new(rng_h.next_below(1 << 20) & !63);
        if !hot_cache.access_data(black_box(pa), false, &ctx) {
            hot_cache.fill_data(pa, false, false, &ctx);
        }
    });

    let mut fill_cache = Cache::new(
        CacheConfig { name: "L2", size_bytes: 2 << 20, ways: 16, block_bytes: 64, latency: 16 },
        Policy::srrip(),
    );
    let mut rng_f = SplitMix64::new(12);
    // Every op evicts + fills (addresses never repeat in cache lifetime).
    let mut next_pa = 0u64;
    bench(&filter, "cache_fill_evict", 2_000_000, || {
        next_pa = next_pa.wrapping_add(rng_f.next_below(1 << 30) | 64) & !63;
        black_box(fill_cache.fill_data(PhysAddr::new(next_pa), false, false, &ctx));
    });

    let mut hier = Hierarchy::new(HierarchyConfig::default());
    let mut rng2 = SplitMix64::new(2);
    bench(&filter, "hierarchy_access_random", 1_000_000, || {
        let pa = PhysAddr::new(rng2.next_below(256 << 20) & !63);
        black_box(hier.access(pa, false, MemClass::Data, &ctx));
    });

    let mut tlb = SetAssocTlb::new(TlbConfig::l2_unified(1536, 12));
    let asid = Asid::new(1);
    for vpn in 0..1536u64 {
        tlb.fill(TlbEntry::new(vpn, asid, PageSize::Size4K, vpn));
    }
    let mut rng3 = SplitMix64::new(3);
    bench(&filter, "l2_tlb_probe", 5_000_000, || {
        let vpn = rng3.next_below(4096);
        black_box(tlb.probe(vpn, asid, PageSize::Size4K));
    });

    let mut alloc = FrameAllocator::new(4 << 30, 4);
    let mut pt = RadixPageTable::new(&mut alloc);
    for i in 0..10_000u64 {
        let frame = alloc.alloc_4k();
        pt.map(VirtAddr::new(0x4000_0000 + i * 4096), frame, PageSize::Size4K, &mut alloc);
    }
    let mut walk_hier = Hierarchy::new(HierarchyConfig::default());
    let mut walker = PageTableWalker::new();
    let mut rng4 = SplitMix64::new(5);
    bench(&filter, "radix_walk", 1_000_000, || {
        let va = VirtAddr::new(0x4000_0000 + rng4.next_below(10_000) * 4096);
        black_box(walker.walk(&mut pt, va, Asid::new(1), &mut walk_hier, &ctx));
    });

    let vctx = ReplacementCtx { l2_tlb_mpki: 10.0, l2_cache_mpki: 0.0 };
    let mut l2 = Cache::new(
        CacheConfig { name: "L2", size_bytes: 2 << 20, ways: 16, block_bytes: 64, latency: 16 },
        Policy::tlb_aware_srrip(),
    );
    let mut v = Victima::default();
    let sets = l2.num_sets();
    for g in 0..4096u64 {
        let (set, tag) = tlb_block::group_index(g, sets);
        l2.fill_translation(set, tag, BlockKind::Tlb, Asid::new(1), PageSize::Size4K, &vctx);
    }
    let mut rng5 = SplitMix64::new(6);
    bench(&filter, "victima_probe", 2_000_000, || {
        let va = VirtAddr::new(rng5.next_below(1 << 30) & !0xfff);
        black_box(v.probe(&mut l2, va, Asid::new(1), BlockKind::Tlb, &vctx));
    });

    let mut rng6 = SplitMix64::new(7);
    bench(&filter, "tlb_block_index_math", 10_000_000, || {
        let va = VirtAddr::new(rng6.next_u64());
        black_box(tlb_block::tlb_block_index(va, PageSize::Size4K, 2048));
    });
}
