//! `cargo bench` target that regenerates every paper table/figure at
//! quick scale (harness = false: this is a macro-benchmark, not a
//! statistical micro-benchmark).

use victima_bench::{experiments, ExpCtx};

fn main() {
    // Respect `cargo bench -- <filter>`-style arguments minimally: any
    // non-flag argument restricts to matching experiment ids.
    let filters: Vec<String> = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
    let ctx = ExpCtx::quick();
    let start = std::time::Instant::now();
    let ids: Vec<&str> = experiments::ALL_IDS
        .iter()
        .copied()
        .filter(|id| filters.is_empty() || filters.iter().any(|f| id.contains(f.as_str())))
        .collect();
    for id in ids {
        let t0 = std::time::Instant::now();
        print!("{}", report::text::render_all(&experiments::by_id(&ctx, id).expect("known id")));
        eprintln!("[{id}: {:.1}s]", t0.elapsed().as_secs_f64());
    }
    eprintln!("[paper_tables total: {:.1}s]", start.elapsed().as_secs_f64());
}
