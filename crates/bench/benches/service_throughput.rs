//! Sweep-service throughput macro-benchmark (harness = false): measures
//! the daemon's end-to-end job rate — accept, cache lookup, stream,
//! journal — for warm (all-cached) and cold (all-simulated) sweeps
//! against a real daemon driving real worker processes.
//!
//! ```text
//! cargo bench --bench service_throughput
//! ```
//!
//! Warm jobs/sec isolates pure service overhead (protocol + cache + TCP
//! round trip; zero simulation), which is the number that matters for
//! interactive sweep iteration. A third, *faulty* pass reruns the cold
//! sweep under injected worker deaths (`abort=*@0.25`: each attempt has
//! a 25 % chance its worker aborts mid-spec) to price the recovery
//! machinery — kill detection, respawn, backoff, re-dispatch. Results
//! are written to `BENCH_service.json` (override with
//! `VICTIMA_SVC_BENCH_OUT`) in the `report` crate's JSON schema.
//! Wall-clock is machine-dependent, so this benchmark records and never
//! gates.

use report::{Column, ExperimentReport, Metric, Provenance, Unit, Value};
use std::path::PathBuf;
use std::time::Instant;
use svc::{DaemonConfig, FaultPlan, SweepRequest, WorkerBackend};
use workloads::Scale;

const WARMUP: u64 = 1_000;
const INSTRUCTIONS: u64 = 10_000;
const WARM_ROUNDS: u32 = 50;

/// The faulty pass's fault plan: 25 % of worker attempts die.
const FAULTS: &str = "abort=*@0.25";

fn request() -> SweepRequest {
    SweepRequest {
        configs: vec!["radix".into(), "victima".into()],
        workloads: vec!["RND".into(), "XS".into()],
        scale: Scale::Tiny,
        warmup: WARMUP,
        instructions: INSTRUCTIONS,
        seed: vm_types::DEFAULT_SEED,
        sampling: None,
    }
}

fn submit_once(dir: &std::path::Path, req: &SweepRequest) -> svc::SweepSummary {
    let stream = svc::connect(dir).expect("daemon reachable");
    svc::submit(stream, req, |_, _| {}).expect("sweep completes")
}

fn main() {
    let dir = std::env::temp_dir().join(format!("victima-svc-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let exe = PathBuf::from(env!("CARGO_BIN_EXE_experiments"));
    let handle = svc::start(DaemonConfig::new(dir.clone(), WorkerBackend::Process(exe.clone())))
        .expect("daemon starts");
    let req = request();
    let specs = req.specs().expect("request expands").len() as u64;
    println!("service_throughput: {specs}-spec Tiny sweep against a 1-worker daemon at {}", handle.addr());

    // Cold pass: every spec simulates in a worker process.
    let t = Instant::now();
    let cold = submit_once(&dir, &req);
    let cold_wall = t.elapsed().as_secs_f64();
    assert_eq!(cold.results, specs, "cold sweep must complete every spec");
    assert_eq!(cold.cached, 0, "cold sweep must start from an empty cache");
    let cold_specs_s = specs as f64 / cold_wall;
    println!("  cold: {cold_wall:.3}s ({cold_specs_s:.1} specs/s, all simulated)");

    // Warm passes: pure service overhead, zero simulation.
    let t = Instant::now();
    for _ in 0..WARM_ROUNDS {
        let warm = submit_once(&dir, &req);
        assert_eq!(warm.cached, specs, "warm sweep must answer entirely from the cache");
    }
    let warm_wall = t.elapsed().as_secs_f64();
    let warm_jobs_s = f64::from(WARM_ROUNDS) / warm_wall;
    let warm_specs_s = f64::from(WARM_ROUNDS) * specs as f64 / warm_wall;
    println!("  warm: {WARM_ROUNDS} sweeps in {warm_wall:.3}s ({warm_jobs_s:.1} jobs/s, {warm_specs_s:.1} specs/s)");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // Faulty pass: the same cold sweep with 25 % of worker attempts
    // dying mid-spec — measures what recovery (kill, respawn, backoff,
    // re-dispatch) costs relative to the clean cold number.
    let faulty_dir = std::env::temp_dir().join(format!("victima-svc-bench-faulty-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&faulty_dir);
    let faulty_handle = svc::start(DaemonConfig {
        faults: FaultPlan::parse(FAULTS).expect("bench fault plan parses"),
        ..DaemonConfig::new(faulty_dir.clone(), WorkerBackend::Process(exe))
    })
    .expect("faulty daemon starts");
    let t = Instant::now();
    let faulty = submit_once(&faulty_dir, &req);
    let faulty_wall = t.elapsed().as_secs_f64();
    let retried = svc::status(&faulty_dir).expect("status answers").specs_retried;
    assert_eq!(faulty.results + faulty.errors, specs, "the faulty sweep must terminate with a line per spec");
    let faulty_specs_s = specs as f64 / faulty_wall;
    println!(
        "  faulty ({FAULTS}): {faulty_wall:.3}s ({faulty_specs_s:.1} specs/s, {retried} retries, {} error(s))",
        faulty.errors
    );
    faulty_handle.shutdown();
    let _ = std::fs::remove_dir_all(&faulty_dir);

    let mut report = ExperimentReport::new("bench_service", "Sweep service throughput (jobs/s)")
        .with_label_name("pass")
        .with_columns([Column::new("jobs/s", Unit::Raw), Column::new("specs/s", Unit::Raw)])
        .with_provenance(Provenance {
            scale: format!("{:?}", Scale::Tiny),
            warmup: WARMUP,
            instructions: INSTRUCTIONS,
            seed: vm_types::DEFAULT_SEED,
            engine: sim::ENGINE_ID.to_owned(),
            configs: req.configs.clone(),
            workloads: req.workloads.clone(),
        });
    report.note(format!(
        "1-worker daemon, {specs}-spec sweep; warm = {WARM_ROUNDS} all-cached resubmissions; \
         faulty = cold sweep under {FAULTS} ({retried} retries, {} error(s))",
        faulty.errors
    ));
    report.push_row("cold", [Value::from(1.0 / cold_wall), Value::from(cold_specs_s)]);
    report.push_row("warm", [Value::from(warm_jobs_s), Value::from(warm_specs_s)]);
    report.push_row("faulty", [Value::from(1.0 / faulty_wall), Value::from(faulty_specs_s)]);
    report.push_metric(Metric::new("svc_jobs_per_s/warm", warm_jobs_s, Unit::Raw));
    report.push_metric(Metric::new("svc_specs_per_s/warm", warm_specs_s, Unit::Raw));
    report.push_metric(Metric::new("svc_specs_per_s/cold", cold_specs_s, Unit::Raw));
    report.push_metric(Metric::new("svc_specs_per_s/faulty", faulty_specs_s, Unit::Raw));
    report.push_metric(Metric::new("svc_retries/faulty", retried as f64, Unit::Raw));

    let out = std::env::var("VICTIMA_SVC_BENCH_OUT").unwrap_or_else(|_| "BENCH_service.json".to_owned());
    std::fs::write(&out, report::json::to_json(&report)).expect("artifact written");
    println!("  artifact: {out}");
}
