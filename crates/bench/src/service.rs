//! CLI glue for the sweep service: `experiments serve`, `submit` and
//! `status` (argument parsing, human-facing progress on stderr, machine
//! stream on stdout). All actual service machinery lives in the `svc`
//! crate; this module only translates flags into [`svc`] calls.

use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;
use svc::{ClientOptions, DaemonConfig, FaultPlan, StreamLine, SweepRequest, WorkerBackend};

/// Default service directory, relative to the working directory.
pub const DEFAULT_DIR: &str = ".victima-svc";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        fail(&format!("{flag} needs a value"));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let had = args.iter().any(|a| a == flag);
    args.retain(|a| a != flag);
    had
}

fn parse_u64(args: &mut Vec<String>, flag: &str) -> Option<u64> {
    flag_value(args, flag).map(|v| match v.parse() {
        Ok(n) => n,
        Err(_) => fail(&format!("{flag} needs an unsigned integer")),
    })
}

fn service_dir(args: &mut Vec<String>) -> PathBuf {
    flag_value(args, "--dir").map_or_else(|| PathBuf::from(DEFAULT_DIR), PathBuf::from)
}

fn reject_leftovers(args: &[String], what: &str) {
    if let Some(extra) = args.first() {
        fail(&format!("{what}: unexpected argument {extra:?}"));
    }
}

/// `experiments serve [--dir DIR] [--port N] [--workers N]
/// [--deadline-ms N] [--retries N] [--cache-max-bytes N] [--faults PLAN]`
/// — run the daemon in the foreground until a client sends the shutdown
/// op. `--faults` (or `VICTIMA_SVC_FAULTS`) turns on deterministic fault
/// injection; see `svc::fault` for the grammar.
pub fn serve_cli(mut args: Vec<String>) -> i32 {
    let dir = service_dir(&mut args);
    let port = parse_u64(&mut args, "--port").map_or(0u16, |p| match u16::try_from(p) {
        Ok(p) => p,
        Err(_) => fail("--port needs a value in 0..65536"),
    });
    let workers = parse_u64(&mut args, "--workers").map_or_else(default_workers, |n| n.max(1) as usize);
    let deadline = parse_u64(&mut args, "--deadline-ms")
        .map_or(svc::daemon::DEFAULT_DEADLINE, |ms| Duration::from_millis(ms.max(1)));
    let retries =
        parse_u64(&mut args, "--retries").map_or(svc::daemon::DEFAULT_RETRIES, |n| match u32::try_from(n) {
            Ok(n) => n,
            Err(_) => fail("--retries needs a value in 0..2^32"),
        });
    let cache_max_bytes = parse_u64(&mut args, "--cache-max-bytes");
    let faults = match flag_value(&mut args, "--faults") {
        Some(spec) => match FaultPlan::parse(&spec) {
            Ok(plan) => plan,
            Err(e) => fail(&format!("--faults: {e}")),
        },
        None => match FaultPlan::from_env() {
            Ok(plan) => plan,
            Err(e) => fail(&format!("{}: {e}", svc::FAULTS_ENV)),
        },
    };
    reject_leftovers(&args, "serve");
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("serve: cannot locate the experiments binary for worker re-exec: {e}");
            return 1;
        }
    };
    eprintln!("svc: serving {} with {workers} worker process(es)", dir.display());
    let cfg = DaemonConfig {
        workers,
        port,
        deadline,
        retries,
        cache_max_bytes,
        faults,
        ..DaemonConfig::new(dir, WorkerBackend::Process(exe))
    };
    match svc::run(cfg) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("serve failed: {e}");
            1
        }
    }
}

/// Worker-count default: `VICTIMA_JOBS`, else available parallelism —
/// the same policy as the batch engine.
fn default_workers() -> usize {
    sim::SimEngine::new().jobs()
}

/// Builds the [`SweepRequest`] shared by `submit` and `submit --local`
/// from the CLI flags.
fn parse_request(args: &mut Vec<String>) -> SweepRequest {
    let configs: Vec<String> = flag_value(args, "--configs")
        .unwrap_or_else(|| "radix,victima".to_owned())
        .split(',')
        .map(str::to_owned)
        .collect();
    let workloads: Vec<String> = match flag_value(args, "--workloads").as_deref() {
        None | Some("all") => workloads::registry::WORKLOAD_NAMES.iter().map(|&w| w.to_owned()).collect(),
        Some(list) => list.split(',').map(str::to_owned).collect(),
    };
    let scale = flag_value(args, "--scale").map_or(workloads::Scale::Tiny, |v| {
        workloads::Scale::parse(&v)
            .unwrap_or_else(|| fail(&format!("unknown scale {v:?} (pick tiny, small, full or paper)")))
    });
    let (default_warmup, default_instr) = scale.default_budget();
    let warmup = parse_u64(args, "--warmup").unwrap_or(default_warmup);
    let instructions = parse_u64(args, "--instr").unwrap_or(default_instr);
    let seed = parse_u64(args, "--seed").unwrap_or(vm_types::DEFAULT_SEED);
    let sampling = flag_value(args, "--sampling").map(|v| match sim::SamplingConfig::parse(&v) {
        Ok(s) => s,
        Err(e) => fail(&format!("--sampling: {e}")),
    });
    SweepRequest { configs, workloads, scale, warmup, instructions, seed, sampling }
}

/// `experiments submit [--dir DIR] [--configs a,b] [--workloads X,Y|all]
/// [--scale S] [--warmup N] [--instr N] [--seed N] [--sampling U:D[:W]]
/// [--out FILE] [--local] [--watch] [--attempts N]` — submit a sweep and
/// stream its results.
///
/// Every per-spec line goes to stdout as it arrives; `--out` appends the
/// same lines to a file (results and errors only — no control lines, so
/// two outputs of the same sweep diff clean). `--watch` adds a live
/// per-spec progress line on stderr (`[watch done/total] config/workload
/// …`) without touching the machine stream. `--local` skips the daemon
/// and runs the identical sweep in-process, emitting identical bytes.
/// `--attempts N` (default 3) bounds total submit connections: if the
/// stream drops mid-sweep the client reconnects, resubmits, and resumes
/// where it left off — cached replay makes the reassembled stream
/// byte-identical to an undropped one. Exit status: 0 when every spec
/// produced a result, 1 otherwise.
pub fn submit_cli(mut args: Vec<String>) -> i32 {
    let dir = service_dir(&mut args);
    let local = take_flag(&mut args, "--local");
    let watch = take_flag(&mut args, "--watch");
    let out_path = flag_value(&mut args, "--out").map(PathBuf::from);
    let attempts = parse_u64(&mut args, "--attempts").map_or(3u32, |n| match u32::try_from(n.max(1)) {
        Ok(n) => n,
        Err(_) => fail("--attempts needs a value in 1..2^32"),
    });
    let req = parse_request(&mut args);
    reject_leftovers(&args, "submit");
    let mut out_file = out_path.as_ref().map(|p| match std::fs::File::create(p) {
        Ok(f) => f,
        Err(e) => fail(&format!("cannot create {}: {e}", p.display())),
    });
    let mut emit = |line: &str| {
        println!("{line}");
        if let Some(f) = out_file.as_mut() {
            if let Err(e) = writeln!(f, "{line}") {
                eprintln!("submit: write to --out failed: {e}");
                std::process::exit(1);
            }
        }
    };
    // `--watch` progress: one stderr line per spec as it lands. The
    // total is the sweep's own size (configs × workloads) — the stream
    // carries exactly one Result/Error/Timeout line per spec.
    let total = (req.configs.len() * req.workloads.len()) as u64;
    let mut done = 0u64;
    let mut watch_note = |parsed: &StreamLine| {
        if !watch {
            return;
        }
        let what = match parsed {
            StreamLine::Result { report, .. } => {
                let p = &report.provenance;
                format!("{}/{} ok", p.configs.join("+"), p.workloads.join("+"))
            }
            StreamLine::Error { config, workload, error, .. } => {
                format!("{config}/{workload} ERROR: {error}")
            }
            StreamLine::Timeout { config, workload, error, .. } => {
                format!("{config}/{workload} TIMEOUT: {error}")
            }
            _ => return,
        };
        done += 1;
        eprintln!("[watch {done}/{total}] {what}");
    };

    let summary = if local {
        svc::run_local(&req, |line| {
            emit(line);
            if watch {
                match svc::parse_stream_line(line) {
                    Ok(parsed) => watch_note(&parsed),
                    Err(e) => eprintln!("[watch] unparseable line: {e}"),
                }
            }
        })
    } else {
        svc::client::submit_resumed(&dir, ClientOptions::default(), attempts, &req, |line, parsed| {
            emit(line);
            watch_note(parsed);
        })
    };
    match summary {
        Ok(s) => {
            let reconnects = if s.connections > 1 {
                format!(", {} reconnect(s)", s.connections - 1)
            } else {
                String::new()
            };
            eprintln!(
                "[{}: {} spec(s) — {} result(s), {} cached, {} error(s){reconnects}]",
                s.job, s.specs, s.results, s.cached, s.errors
            );
            i32::from(s.errors > 0)
        }
        Err(e) => {
            eprintln!("submit failed: {e}");
            1
        }
    }
}

/// `experiments status [--dir DIR] [--metrics] [--shutdown]` — print the
/// daemon's status line (stdout, machine-readable) plus a human summary
/// (stderr); `--metrics` asks for the observability registry (queue
/// depth, latency histogram, worker utilization, cache hit ratio)
/// instead; `--shutdown` asks the daemon to exit.
pub fn status_cli(mut args: Vec<String>) -> i32 {
    let dir = service_dir(&mut args);
    let stop = take_flag(&mut args, "--shutdown");
    let want_metrics = take_flag(&mut args, "--metrics");
    reject_leftovers(&args, "status");
    if want_metrics {
        return match svc::metrics(&dir) {
            Ok(m) => {
                println!("{}", m.to_line());
                eprintln!(
                    "[up {:.1}s: queue {}, {} worker(s) at {:.0}% busy, latency mean {:.1} ms over {} spec(s), cache hit ratio {:.0}% ({} hit/{} miss), {} retried, {} timed out, {} failed, {} quarantined, {} respawn(s)]",
                    m.uptime_ms as f64 / 1_000.0,
                    m.queue_depth,
                    m.workers,
                    100.0 * m.worker_utilization(),
                    m.mean_latency_ms(),
                    m.latency_count,
                    100.0 * m.cache_hit_ratio(),
                    m.cache_hits,
                    m.cache_misses,
                    m.retries,
                    m.timeouts,
                    m.failures,
                    m.quarantined,
                    m.worker_respawns
                );
                0
            }
            Err(e) => {
                eprintln!("metrics failed: {e}");
                1
            }
        };
    }
    if stop {
        return match svc::shutdown(&dir) {
            Ok(()) => {
                eprintln!("[daemon at {} shut down]", dir.display());
                0
            }
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                1
            }
        };
    }
    match svc::status(&dir) {
        Ok(info) => {
            println!("{}", info.to_line());
            eprintln!(
                "[{} worker(s), jobs {}/{} done, specs {} done ({} simulated, {} cached, {} failed, {} timed out, {} retried), cache {} entries/{} B ({} quarantined, {} evicted), {} journal record(s) skipped]",
                info.workers,
                info.jobs_completed,
                info.jobs_accepted,
                info.specs_completed,
                info.specs_simulated,
                info.specs_cached,
                info.specs_failed,
                info.specs_timed_out,
                info.specs_retried,
                info.cache_entries,
                info.cache_bytes,
                info.cache_quarantined,
                info.cache_evicted,
                info.journal_skipped
            );
            0
        }
        Err(e) => {
            eprintln!("status failed: {e}");
            1
        }
    }
}
