//! Shared plumbing for the wall-clock performance benches
//! (`sim_throughput`, `engine_scaling`): one typed JSON artifact, one
//! regression gate.
//!
//! Unlike the reproduction baselines, wall-clock numbers are
//! machine-dependent, so they are *not* part of `experiments --check`.
//! Instead the benches write a fresh `BENCH_throughput.json` (uploaded as
//! a CI artifact) and compare per-workload simulation throughput against
//! the committed reference under `crates/bench/baselines/`, failing only
//! on a large (>25%) regression. Noisy runners can opt out with
//! `VICTIMA_SKIP_PERF_GATE=1`.

use report::{json, ExperimentReport};
use std::path::{Path, PathBuf};

/// Artifact id shared by every perf bench (they merge into one report).
pub const THROUGHPUT_ID: &str = "bench_throughput";

/// Fractional slowdown tolerated before the gate fails (25%).
pub const GATE_TOLERANCE: f64 = 0.25;

/// Where the fresh artifact is written: `VICTIMA_BENCH_OUT` or
/// `BENCH_throughput.json` in the invoking directory.
pub fn artifact_path() -> PathBuf {
    std::env::var_os("VICTIMA_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_throughput.json"))
}

/// The reference the gate compares against: `VICTIMA_BENCH_REF` when
/// set (CI points it at a per-runner cached artifact — wall-clock is
/// only comparable on the same machine), else the committed reference
/// under `crates/bench/baselines/`.
pub fn reference_path() -> PathBuf {
    std::env::var_os("VICTIMA_BENCH_REF").map(PathBuf::from).unwrap_or_else(|| {
        Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/baselines")).join("BENCH_throughput.json")
    })
}

/// Loads the report at `path`, if present and parseable.
pub fn load(path: &Path) -> Option<ExperimentReport> {
    let text = std::fs::read_to_string(path).ok()?;
    json::from_json(&text).ok()
}

/// Writes `report` to `path` (panics on I/O errors: benches are dev tools).
pub fn store(path: &Path, report: &ExperimentReport) {
    std::fs::write(path, json::to_json(report))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

/// Merges `fresh` into the artifact at `path` and writes the result. The
/// fresh report wins everywhere it carries content: its rows, provenance
/// and notes replace the old ones (unless it has no rows — the
/// metrics-only `engine_scaling` contribution — in which case the
/// existing table is kept), and its metrics replace same-named ones.
/// Metrics only the existing artifact knows are carried over, so the
/// benches compose into one JSON regardless of which runs first.
pub fn merge_into(path: &Path, mut fresh: ExperimentReport) {
    if let Some(existing) = load(path).filter(|r| r.id == fresh.id) {
        if fresh.rows.is_empty() && !existing.rows.is_empty() {
            fresh.label_name = existing.label_name;
            fresh.columns = existing.columns;
            fresh.rows = existing.rows;
            fresh.provenance = existing.provenance;
            fresh.notes = existing.notes;
        }
        for m in existing.metrics {
            if fresh.metric(&m.name).is_none() {
                fresh.metrics.push(m);
            }
        }
    }
    store(path, &fresh);
}

/// One gate comparison outcome.
#[derive(Debug)]
pub struct GateFailure {
    /// Metric name ("minstr_per_s/RND").
    pub name: String,
    /// Committed reference value.
    pub reference: f64,
    /// Freshly measured value.
    pub actual: f64,
}

impl std::fmt::Display for GateFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.3} vs committed {:.3} ({:+.1}%)",
            self.name,
            self.actual,
            self.reference,
            (self.actual / self.reference - 1.0) * 100.0
        )
    }
}

/// Compares every `prefix`-named metric of `fresh` against `reference`,
/// collecting the ones that regressed by more than [`GATE_TOLERANCE`].
/// Higher is better for every gated metric (they are throughputs).
pub fn regressions(fresh: &ExperimentReport, reference: &ExperimentReport, prefix: &str) -> Vec<GateFailure> {
    let mut failures = Vec::new();
    for have in reference.metrics.iter().filter(|m| m.name.starts_with(prefix)) {
        let Some(now) = fresh.metric(&have.name) else {
            continue;
        };
        if have.value > 0.0 && now.value < have.value * (1.0 - GATE_TOLERANCE) {
            failures.push(GateFailure { name: have.name.clone(), reference: have.value, actual: now.value });
        }
    }
    failures
}

/// Whether the perf gate is disabled via `VICTIMA_SKIP_PERF_GATE=1`.
pub fn gate_skipped() -> bool {
    std::env::var("VICTIMA_SKIP_PERF_GATE").map(|v| v == "1").unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use report::{Metric, Unit};

    fn report_with(metrics: &[(&str, f64)]) -> ExperimentReport {
        let mut r = ExperimentReport::new(THROUGHPUT_ID, "t");
        for (name, v) in metrics {
            r.push_metric(Metric::new(*name, *v, Unit::Raw));
        }
        r
    }

    #[test]
    fn gate_flags_only_large_regressions() {
        let reference = report_with(&[("minstr_per_s/A", 1.0), ("minstr_per_s/B", 1.0)]);
        let fresh = report_with(&[("minstr_per_s/A", 0.80), ("minstr_per_s/B", 0.70)]);
        let fails = regressions(&fresh, &reference, "minstr_per_s/");
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].name, "minstr_per_s/B");
    }

    #[test]
    fn gate_ignores_metrics_absent_from_the_fresh_run() {
        let reference = report_with(&[("minstr_per_s/GONE", 5.0)]);
        let fresh = report_with(&[]);
        assert!(regressions(&fresh, &reference, "minstr_per_s/").is_empty());
    }

    #[test]
    fn improvements_pass() {
        let reference = report_with(&[("minstr_per_s/A", 1.0)]);
        let fresh = report_with(&[("minstr_per_s/A", 3.0)]);
        assert!(regressions(&fresh, &reference, "minstr_per_s/").is_empty());
    }

    #[test]
    fn merge_replaces_by_name_and_appends() {
        let dir = std::env::temp_dir().join(format!("victima-perf-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merge.json");
        store(&path, &report_with(&[("minstr_per_s/A", 1.0)]));
        merge_into(&path, report_with(&[("minstr_per_s/A", 2.0), ("wall_s/jobs1", 9.0)]));
        let merged = load(&path).expect("artifact parses");
        assert_eq!(merged.metrics.len(), 2);
        assert_eq!(merged.metric("minstr_per_s/A").unwrap().value, 2.0);
        assert_eq!(merged.metric("wall_s/jobs1").unwrap().value, 9.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_keeps_fresh_rows_over_stale_ones() {
        use report::{Column, Value};
        let dir = std::env::temp_dir().join(format!("victima-perf-rows-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rows.json");
        // A stale artifact with old rows and an engine_scaling metric.
        let mut stale = report_with(&[("minstr_per_s/A", 1.0), ("engine_scaling/wall_s_jobs1", 9.0)]);
        stale.columns = vec![Column::new("Minstr/s", Unit::Raw)];
        stale.push_row("A", [Value::from(1.0)]);
        store(&path, &stale);
        // A fresh full run: its rows must replace the stale table while the
        // other bench's metric is carried over.
        let mut fresh = report_with(&[("minstr_per_s/A", 2.0)]);
        fresh.columns = vec![Column::new("Minstr/s", Unit::Raw)];
        fresh.push_row("A", [Value::from(2.0)]);
        merge_into(&path, fresh);
        let merged = load(&path).expect("artifact parses");
        assert_eq!(merged.rows.len(), 1);
        assert_eq!(merged.rows[0].cells[0], Value::Float(2.0), "rows must come from the fresh run");
        assert_eq!(merged.metric("minstr_per_s/A").unwrap().value, 2.0);
        assert_eq!(merged.metric("engine_scaling/wall_s_jobs1").unwrap().value, 9.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_only_merge_preserves_existing_rows() {
        use report::{Column, Value};
        let dir = std::env::temp_dir().join(format!("victima-perf-keep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("keep.json");
        let mut full = report_with(&[("minstr_per_s/A", 1.0)]);
        full.columns = vec![Column::new("Minstr/s", Unit::Raw)];
        full.push_row("A", [Value::from(1.0)]);
        store(&path, &full);
        // engine_scaling's rowless contribution must not wipe the table.
        merge_into(&path, report_with(&[("engine_scaling/wall_s_jobs1", 9.0)]));
        let merged = load(&path).expect("artifact parses");
        assert_eq!(merged.rows.len(), 1, "metrics-only merge must keep the existing rows");
        assert_eq!(merged.metric("minstr_per_s/A").unwrap().value, 1.0);
        assert_eq!(merged.metric("engine_scaling/wall_s_jobs1").unwrap().value, 9.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
