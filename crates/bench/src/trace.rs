//! Trace capture & replay commands behind `experiments trace …`:
//! recording a workload's reference stream to a `.vtrace` file, replaying
//! a file through the full simulator, and summarising a file's header
//! and per-kind histogram as a `report`-schema artifact.

use report::{Column, ExperimentReport, Metric, Provenance, Unit, Value};
use sim::{RunSpec, SimEngine, SimStats, System, SystemConfig};
use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;
use victima_trace::{
    TraceCounts, TraceError, TraceHeader, TraceReader, TraceScale, TraceSummary, TraceWriter,
};
use workloads::{registry, replay::trace_name, Scale};

/// Writer identity recorded in every trace header's provenance field.
pub const TRACE_WRITER_ID: &str = "victima-trace/1";

/// Records `workload`'s reference stream under `cfg` to `out`
/// (warm-up included — replay re-runs the whole budget). Returns the
/// writer's summary (record counts, chunks, encoded bytes).
///
/// The recorded stream depends only on the workload generator and the
/// region mapping (scale + seed), not on the translation mechanism, so a
/// trace recorded under one native config replays byte-identically under
/// any other native config with the same seed.
pub fn record(
    workload: &str,
    cfg: &SystemConfig,
    scale: Scale,
    seed: u64,
    warmup: u64,
    measured: u64,
    out: &Path,
) -> Result<TraceSummary, TraceError> {
    let w = registry::by_name_seeded(workload, scale, seed)
        .ok_or_else(|| TraceError::Format(format!("unknown workload {workload} (try --list)")))?;
    let mut header = TraceHeader::new(workload, TraceScale::from(scale), seed, warmup, measured);
    header.regions = w
        .region_specs()
        .iter()
        .map(|s| victima_trace::TraceRegion::new(s.name, s.bytes, s.huge_fraction))
        .collect();
    header.writer = format!("{TRACE_WRITER_ID} engine={} config={}", sim::ENGINE_ID, cfg.name);
    let writer = Rc::new(RefCell::new(TraceWriter::create(out, &header)?));

    let mut run_cfg = cfg.clone();
    run_cfg.seed = seed;
    let mut sys = System::new(run_cfg, w);
    let sink = Rc::clone(&writer);
    sys.set_record_hook(Box::new(move |r| sink.borrow_mut().push(r)));
    sys.run_with_warmup(warmup, measured);
    drop(sys.take_record_hook());
    drop(sys);
    let writer = Rc::try_unwrap(writer).expect("record hook released its writer clone").into_inner();
    writer.finish().map_err(TraceError::Io)
}

/// Replays `path` through the full simulator under `cfg` (seed, scale and
/// budgets come from the trace header) and returns the run's statistics.
pub fn replay(path: &Path, cfg: &SystemConfig, jobs: usize) -> Result<SimStats, TraceError> {
    run_replay(path, cfg, jobs).map(|(_, stats)| stats)
}

/// One header parse serves both the run and its report: the replay spec
/// (budgets, scale, seed) and the artifact provenance come from the same
/// open. (The engine worker still opens its own reader — that is the
/// `trace:<path>` contract.)
fn run_replay(path: &Path, cfg: &SystemConfig, jobs: usize) -> Result<(TraceHeader, SimStats), TraceError> {
    let header = TraceReader::open_path(path)?.header().clone();
    let mut run_cfg = cfg.clone();
    run_cfg.seed = header.seed;
    let spec =
        RunSpec::new(trace_name(path), run_cfg, Scale::from(header.scale), header.warmup, header.measured);
    let mut results = SimEngine::with_jobs(jobs).run_batch(vec![spec]);
    Ok((header, results.remove(0).stats))
}

/// Renders a replay run as a `report`-schema artifact (id `trace_replay`).
pub fn replay_report(path: &Path, cfg: &SystemConfig, jobs: usize) -> Result<ExperimentReport, TraceError> {
    let (header, stats) = run_replay(path, cfg, jobs)?;
    let mut r =
        ExperimentReport::new("trace_replay", format!("Trace replay: {} under {}", path.display(), cfg.name))
            .with_label_name("stat")
            .with_columns([Column::new("value", Unit::Raw)])
            .with_provenance(trace_provenance(&header, vec![cfg.name.clone()]));
    r.push_row("instructions", [Value::from(stats.instructions as f64)]);
    r.push_row("cycles", [Value::from(stats.cycles())]);
    r.push_row("l1_tlb_misses", [Value::from(stats.l1_tlb_misses as f64)]);
    r.push_row("l2_tlb_misses", [Value::from(stats.l2_tlb_misses as f64)]);
    r.push_row("page_table_walks", [Value::from(stats.ptws as f64)]);
    r.push_metric(Metric::new("ipc", stats.ipc(), Unit::Ipc));
    r.push_metric(Metric::new("l2_tlb_mpki", stats.l2_tlb_mpki(), Unit::Mpki));
    r.note(format!("replayed {} ({})", path.display(), header.writer));
    Ok(r)
}

/// Scans a trace and renders its header plus a per-kind record histogram
/// as a `report`-schema artifact (id `trace_info`).
pub fn info_report(path: &Path) -> Result<ExperimentReport, TraceError> {
    let reader = TraceReader::open_path(path)?;
    let header = reader.header().clone();
    let mut counts = TraceCounts::default();
    let mut records = reader.records();
    for r in records.by_ref() {
        counts.observe(r?);
    }
    let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);

    let mut r = ExperimentReport::new("trace_info", format!("Trace info: {}", path.display()))
        .with_label_name("record kind")
        .with_columns([Column::new("records", Unit::Count), Column::new("share", Unit::Percent)])
        .with_provenance(trace_provenance(&header, Vec::new()));
    let total = counts.records.max(1) as f64;
    for (kind, n) in [("load", counts.loads), ("store", counts.stores), ("ifetch", counts.ifetches)] {
        r.push_row(kind, [Value::from(n as f64), Value::from(n as f64 / total)]);
    }
    r.push_metric(Metric::new("records", counts.records as f64, Unit::Count));
    r.push_metric(Metric::new("instructions", counts.instructions as f64, Unit::Count));
    r.push_metric(Metric::new("file_bytes", file_bytes as f64, Unit::Bytes));
    r.push_metric(Metric::new(
        "bytes_per_record",
        file_bytes as f64 / counts.records.max(1) as f64,
        Unit::Raw,
    ));
    r.push_metric(Metric::new("footprint_bytes", header.footprint_bytes() as f64, Unit::Bytes));
    r.note(format!(
        "workload {} @ {} scale, seed {:#x}, {} warm-up + {} measured instructions, {} regions",
        header.workload,
        header.scale.name(),
        header.seed,
        header.warmup,
        header.measured,
        header.regions.len()
    ));
    r.note(format!("written by {}", header.writer));
    Ok(r)
}

/// Provenance block for trace artifacts, sourced from the header.
/// `configs` names the configs actually simulated — the replayed system
/// for `trace_replay`, empty for `trace_info` (which runs no simulator).
fn trace_provenance(h: &TraceHeader, configs: Vec<String>) -> Provenance {
    Provenance {
        scale: h.scale.name().to_owned(),
        warmup: h.warmup,
        instructions: h.measured,
        seed: h.seed,
        engine: sim::ENGINE_ID.to_owned(),
        configs,
        workloads: vec![h.workload.clone()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("vtrace-bench-{}-{name}", std::process::id()))
    }

    #[test]
    fn record_then_replay_matches_live_run() {
        let path = tmp("rnd.vtrace");
        let cfg = SystemConfig::radix();
        let (warmup, measured) = (1_000, 10_000);
        let summary = record("RND", &cfg, Scale::Tiny, cfg.seed, warmup, measured, &path).unwrap();
        assert!(summary.counts.records > 0);
        assert!(summary.counts.instructions >= warmup + measured);

        let live = SimEngine::with_jobs(1)
            .run_batch(vec![RunSpec::new("RND", cfg.clone(), Scale::Tiny, warmup, measured)])
            .remove(0)
            .stats;
        let replayed = replay(&path, &cfg, 1).unwrap();
        assert_eq!(live, replayed, "replay must be byte-identical to the live run");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn info_summarises_the_header_and_histogram() {
        let path = tmp("info.vtrace");
        let cfg = SystemConfig::radix();
        record("RND", &cfg, Scale::Tiny, cfg.seed, 500, 5_000, &path).unwrap();
        let r = info_report(&path).unwrap();
        assert_eq!(r.id, "trace_info");
        assert_eq!(r.rows.len(), 3);
        assert!(r.metric("records").unwrap().value > 0.0);
        assert!(r.metric("file_bytes").unwrap().value > 0.0);
        // The artifact must survive the JSON round trip (the schema gate).
        let json = report::json::to_json(&r);
        assert_eq!(report::json::from_json(&json).unwrap(), r);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let path = tmp("nope.vtrace");
        let err =
            record("NOPE", &SystemConfig::radix(), Scale::Tiny, 1, 10, 100, &path).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("unknown workload"), "{err}");
    }
}
