//! Plain-text result tables, one per paper figure/table.

use std::fmt;

/// A rendered experiment result.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id ("fig20", "table2", …).
    pub id: &'static str,
    /// Human-readable title (what the paper's caption says).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (calibration caveats, observed means, …).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        Self { id, title: title.into(), headers: Vec::new(), rows: Vec::new(), notes: Vec::new() }
    }

    /// Sets the headers.
    pub fn headers<I: IntoIterator<Item = S>, S: Into<String>>(mut self, hs: I) -> Self {
        self.headers = hs.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one row.
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Appends a note line.
    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(cell.len());
                write!(f, "{cell:>w$}  ")?;
            }
            writeln!(f)
        };
        if !self.headers.is_empty() {
            render(f, &self.headers)?;
        }
        for row in &self.rows {
            render(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("figX", "demo").headers(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "10000"]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("figX"));
        assert!(s.contains("alpha"));
        assert!(s.contains("note: a note"));
        // Both value cells end aligned at the same column.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].len(), lines[2].len());
    }

    #[test]
    fn rows_longer_than_headers_are_ok() {
        let mut t = Table::new("t", "x").headers(["a"]);
        t.row(["1", "2", "3"]);
        assert!(t.to_string().contains('3'));
    }
}
