//! Warm-state checkpoint commands behind `experiments ckpt …`: capturing
//! a workload's post-warm-up state to a `.vckpt` file, resuming a
//! measured run from one, and summarising a file's metadata and sections
//! as a `report`-schema artifact.
//!
//! A checkpoint amortises warm-up across measured runs: `ckpt save` pays
//! the warm-up once, and every `ckpt resume` continues from that exact
//! boundary with statistics byte-identical to an uninterrupted
//! [`System::run_with_warmup`] run (pinned by `tests/checkpoint.rs`).

use report::{Column, ExperimentReport, Metric, Provenance, Unit, Value};
use sim::{ckpt as sim_ckpt, SimStats, System, SystemConfig};
use std::path::Path;
use victima_trace::{Checkpoint, TraceError};
use workloads::{registry, Scale};

/// Resolves a system configuration from its report name (the `cfg.name`
/// a checkpoint records). Covers every native single-core config the
/// CLI can record under.
pub fn config_named(name: &str) -> Option<SystemConfig> {
    [
        SystemConfig::radix(),
        SystemConfig::victima(),
        SystemConfig::victima_plus_stlb(),
        SystemConfig::pom_tlb(),
    ]
    .into_iter()
    .find(|c| c.name == name)
}

fn build_system(workload: &str, cfg: &SystemConfig, scale: Scale, seed: u64) -> Result<System, TraceError> {
    let w = registry::by_name_seeded(workload, scale, seed)
        .ok_or_else(|| TraceError::Format(format!("unknown workload {workload} (try --list)")))?;
    let mut run_cfg = cfg.clone();
    run_cfg.seed = seed;
    Ok(System::new(run_cfg, w))
}

/// Warms `workload` under `cfg` for `warmup` instructions and writes the
/// post-warm-up state to `out`. Returns the captured checkpoint (for
/// summary printing).
pub fn save(
    workload: &str,
    cfg: &SystemConfig,
    scale: Scale,
    seed: u64,
    warmup: u64,
    out: &Path,
) -> Result<Checkpoint, TraceError> {
    let mut sys = build_system(workload, cfg, scale, seed)?;
    let ck = sim_ckpt::capture_warm(&mut sys, scale, warmup)?;
    ck.write_path(out)?;
    Ok(ck)
}

/// Resumes the measured phase from the checkpoint at `path`: rebuilds
/// the system the checkpoint identifies (config, workload, scale and
/// seed all come from its metadata), restores the warm state, and runs
/// `measured` instructions (the scale's default measured budget when
/// `None`).
pub fn resume(path: &Path, measured: Option<u64>) -> Result<(Checkpoint, u64, SimStats), TraceError> {
    let ck = Checkpoint::read_path(path)?;
    let cfg = config_named(&ck.meta.config).ok_or_else(|| {
        TraceError::Format(format!("checkpoint config {:?} is not resolvable here", ck.meta.config))
    })?;
    let scale = Scale::from(ck.meta.scale);
    let measured = measured.unwrap_or(scale.default_budget().1);
    let mut sys = build_system(&ck.meta.workload.clone(), &cfg, scale, ck.meta.seed)?;
    sim_ckpt::restore_into(&mut sys, &ck, scale)?;
    sys.run(measured);
    sys.finalize_stats();
    Ok((ck, measured, sys.stats))
}

/// Provenance block for checkpoint artifacts, sourced from the metadata.
fn ckpt_provenance(ck: &Checkpoint, measured: u64) -> Provenance {
    Provenance {
        scale: ck.meta.scale.name().to_owned(),
        warmup: ck.meta.warmup,
        instructions: measured,
        seed: ck.meta.seed,
        engine: ck.meta.engine.clone(),
        configs: vec![ck.meta.config.clone()],
        workloads: vec![ck.meta.workload.clone()],
    }
}

/// Renders a resumed run as a `report`-schema artifact (id `ckpt_resume`).
pub fn resume_report(path: &Path, measured: Option<u64>) -> Result<ExperimentReport, TraceError> {
    let (ck, measured, stats) = resume(path, measured)?;
    let mut r = ExperimentReport::new(
        "ckpt_resume",
        format!("Checkpoint resume: {} under {}", path.display(), ck.meta.config),
    )
    .with_label_name("stat")
    .with_columns([Column::new("value", Unit::Raw)])
    .with_provenance(ckpt_provenance(&ck, measured));
    r.push_row("instructions", [Value::from(stats.instructions as f64)]);
    r.push_row("cycles", [Value::from(stats.cycles())]);
    r.push_row("l1_tlb_misses", [Value::from(stats.l1_tlb_misses as f64)]);
    r.push_row("l2_tlb_misses", [Value::from(stats.l2_tlb_misses as f64)]);
    r.push_row("page_table_walks", [Value::from(stats.ptws as f64)]);
    r.push_metric(Metric::new("ipc", stats.ipc(), Unit::Ipc));
    r.push_metric(Metric::new("l2_tlb_mpki", stats.l2_tlb_mpki(), Unit::Mpki));
    r.note(format!(
        "resumed {} at the post-warm-up boundary ({} warm-up instructions, {} stream refs drained)",
        path.display(),
        ck.meta.warmup,
        ck.meta.refs_consumed
    ));
    Ok(r)
}

/// Summarises a checkpoint file's metadata and per-section sizes as a
/// `report`-schema artifact (id `ckpt_info`). Performs no simulation.
pub fn info_report(path: &Path) -> Result<ExperimentReport, TraceError> {
    let ck = Checkpoint::read_path(path)?;
    let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let mut r = ExperimentReport::new("ckpt_info", format!("Checkpoint info: {}", path.display()))
        .with_label_name("section")
        .with_columns([Column::new("words", Unit::Count)])
        .with_provenance(ckpt_provenance(&ck, 0));
    let mut total = 0u64;
    for (name, words) in ck.sections() {
        total += words.len() as u64;
        r.push_row(name, [Value::from(words.len() as f64)]);
    }
    r.push_metric(Metric::new("state_words", total as f64, Unit::Count));
    r.push_metric(Metric::new("file_bytes", file_bytes as f64, Unit::Bytes));
    r.push_metric(Metric::new("refs_consumed", ck.meta.refs_consumed as f64, Unit::Count));
    r.note(format!(
        "workload {} under {} @ {} scale, seed {:#x}, {} warm-up instructions",
        ck.meta.workload,
        ck.meta.config,
        ck.meta.scale.name(),
        ck.meta.seed,
        ck.meta.warmup
    ));
    r.note(format!("written by {}", ck.meta.engine));
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("vckpt-bench-{}-{name}", std::process::id()))
    }

    #[test]
    fn save_then_resume_matches_uninterrupted_run() {
        let path = tmp("rnd.vckpt");
        let cfg = SystemConfig::victima();
        let (warmup, measured) = (2_000, 10_000);
        save("RND", &cfg, Scale::Tiny, cfg.seed, warmup, &path).unwrap();

        let mut reference = build_system("RND", &cfg, Scale::Tiny, cfg.seed).unwrap();
        reference.run_with_warmup(warmup, measured);
        reference.finalize_stats();

        let (ck, ran, stats) = resume(&path, Some(measured)).unwrap();
        assert_eq!(ran, measured);
        assert_eq!(ck.meta.workload, "RND");
        assert_eq!(stats, reference.stats, "resume must be byte-identical to the live run");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn info_summarises_sections() {
        let path = tmp("info.vckpt");
        let cfg = SystemConfig::radix();
        save("RND", &cfg, Scale::Tiny, cfg.seed, 1_000, &path).unwrap();
        let r = info_report(&path).unwrap();
        assert_eq!(r.id, "ckpt_info");
        assert!(r.rows.iter().any(|row| row.label == "l2_tlb"));
        assert!(r.metric("state_words").unwrap().value > 0.0);
        // The artifact must survive the JSON round trip (the schema gate).
        let json = report::json::to_json(&r);
        assert_eq!(report::json::from_json(&json).unwrap(), r);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let path = tmp("nope.vckpt");
        let err = save("NOPE", &SystemConfig::radix(), Scale::Tiny, 1, 10, &path).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("unknown workload"), "{err}");
    }
}
