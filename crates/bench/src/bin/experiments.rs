//! Experiment driver: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--jobs N] all          # every figure/table, paper order
//! experiments [--quick] fig20 fig21             # specific experiments
//! experiments calibrate                         # baseline vitals (not a paper figure)
//! experiments --list
//! ```
//!
//! Budgets: `VICTIMA_INSTR` / `VICTIMA_WARMUP` env vars (defaults
//! 2,000,000 / 200,000); `--quick` forces 600K/60K. Simulations fan out
//! over `--jobs`/`VICTIMA_JOBS` workers (default: all cores).

use victima_bench::{experiments, ExpCtx};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        let n: usize = args.get(i + 1).and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or_else(|| {
            eprintln!("--jobs needs a positive integer");
            std::process::exit(2);
        });
        std::env::set_var("VICTIMA_JOBS", n.to_string());
        args.drain(i..=i + 1);
    }

    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL_IDS {
            println!("{id}");
        }
        println!("calibrate");
        return;
    }
    if args.is_empty() {
        eprintln!("usage: experiments [--quick] <all|calibrate|fig04|...|table2> ...");
        eprintln!("       experiments --list");
        std::process::exit(2);
    }

    let ctx = if quick { ExpCtx::quick() } else { ExpCtx::new() };
    let start = std::time::Instant::now();
    for arg in &args {
        if arg == "all" {
            for t in experiments::all(&ctx) {
                println!("{t}");
            }
            continue;
        }
        match experiments::by_id(&ctx, arg) {
            Some(tables) => {
                for t in tables {
                    println!("{t}");
                }
            }
            None => {
                eprintln!("unknown experiment: {arg} (try --list)");
                std::process::exit(2);
            }
        }
    }
    eprintln!("[experiments completed in {:.1}s]", start.elapsed().as_secs_f64());
}
