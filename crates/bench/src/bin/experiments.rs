//! Experiment driver: regenerates the paper's tables and figures as typed
//! artifacts.
//!
//! ```text
//! experiments [--quick] [--jobs N] all               # every figure/table, paper order
//! experiments --exp fig20,fig21                      # specific experiments
//! experiments --format json --out artifacts/ all     # one artifact per experiment + REPORT.md
//! experiments --check [ids...]                       # diff against committed baselines
//! experiments --save-baselines [ids...]              # regenerate committed baselines
//! experiments calibrate                              # baseline vitals (not a paper figure)
//! experiments --list
//! experiments trace record RND --out rnd.vtrace      # capture a reference stream
//! experiments trace replay rnd.vtrace [--config victima]
//! experiments trace info rnd.vtrace [--format json --out DIR]
//! experiments serve                                  # resident sweep daemon (localhost TCP)
//! experiments submit --configs radix,victima --workloads RND,XS [--watch]
//! experiments status [--metrics] [--shutdown]
//! experiments profile [ids...]                       # per-phase span profile -> BENCH_obs.json
//! ```
//!
//! Budgets: `VICTIMA_INSTR` / `VICTIMA_WARMUP` env vars (defaults
//! 2,000,000 / 200,000); `--quick` forces 600K/60K. `--scale` picks the
//! workload footprint for the suite (default Full); combine with
//! `--sampling U:D[:W]` for paper-scale exploration. `--check` and
//! `--save-baselines` pin the Tiny-scale check profile (see DESIGN.md,
//! "Results pipeline") so committed baselines are reproducible anywhere.
//! Simulations fan out over `--jobs`/`VICTIMA_JOBS` workers (default: all
//! cores); artifacts are byte-identical at any worker count.

use victima_bench::{experiments, ExpCtx, ExperimentReport};

/// Output format selected with `--format`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Jsonl,
    Csv,
    Md,
}

impl Format {
    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "text" => Format::Text,
            "json" => Format::Json,
            "jsonl" => Format::Jsonl,
            "csv" => Format::Csv,
            "md" => Format::Md,
            _ => return None,
        })
    }

    fn extension(self) -> &'static str {
        match self {
            Format::Text => "txt",
            Format::Json => "json",
            Format::Jsonl => "jsonl",
            Format::Csv => "csv",
            Format::Md => "md",
        }
    }

    fn render(self, r: &ExperimentReport) -> String {
        match self {
            Format::Text => report::text::render(r),
            Format::Json => report::json::to_json(r),
            Format::Jsonl => report::jsonl::render(r),
            Format::Csv => report::csv::to_csv(r),
            Format::Md => report::markdown::render(r),
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: experiments [--quick] [--jobs N] [--scale tiny|small|full|paper] [--sampling U:D[:W]]");
    eprintln!(
        "                   [--format text|json|jsonl|csv|md] [--out DIR] [--exp IDS] <all|calibrate|...> ..."
    );
    eprintln!("       experiments --check [ids...]          (pinned profile vs committed baselines)");
    eprintln!("       experiments --save-baselines [ids...] (regenerate committed baselines)");
    eprintln!("       experiments --list");
    eprintln!("       experiments trace record <WORKLOAD> --out FILE");
    eprintln!("                   [--config NAME] [--scale tiny|small|full|paper] [--seed N] [--warmup N] [--instr N]");
    eprintln!("       experiments trace replay <FILE> [--config NAME] [--jobs N] [--format F] [--out DIR]");
    eprintln!("       experiments trace info <FILE> [--format F] [--out DIR]");
    eprintln!("       experiments ckpt save <WORKLOAD> --out FILE");
    eprintln!("                   [--config NAME] [--scale tiny|small|full|paper] [--seed N] [--warmup N]");
    eprintln!("       experiments ckpt resume <FILE> [--instr N] [--format F] [--out DIR]");
    eprintln!("       experiments ckpt info <FILE> [--format F] [--out DIR]");
    eprintln!("       experiments serve [--dir DIR] [--port N] [--workers N] [--deadline-ms N]");
    eprintln!("                   [--retries N] [--cache-max-bytes N] [--faults PLAN]");
    eprintln!(
        "       experiments submit [--dir DIR] [--local] [--watch] [--configs a,b] [--workloads X,Y|all]"
    );
    eprintln!("                   [--scale S] [--warmup N] [--instr N] [--seed N] [--sampling U:D[:W]]");
    eprintln!("                   [--out FILE] [--attempts N]");
    eprintln!("       experiments status [--dir DIR] [--metrics] [--shutdown]");
    eprintln!("       experiments profile [ids...] [--jobs N] [--scale S] [--format F] [--out FILE]");
    std::process::exit(2);
}

fn flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let had = args.iter().any(|a| a == flag);
    args.retain(|a| a != flag);
    had
}

/// Committed baseline directory (resolved at compile time; the binary is
/// a repo tool, not an installable).
const BASELINE_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines");

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden worker mode: `serve` re-execs this binary with this argument
    // so each sweep spec simulates in its own process (crash isolation).
    if args.first().map(String::as_str) == Some(svc::WORKER_ARG) {
        std::process::exit(svc::worker_main());
    }
    if args.first().map(String::as_str) == Some("trace") {
        std::process::exit(trace_cli(args.split_off(1)));
    }
    if args.first().map(String::as_str) == Some("ckpt") {
        std::process::exit(ckpt_cli(args.split_off(1)));
    }
    if args.first().map(String::as_str) == Some("serve") {
        std::process::exit(victima_bench::service::serve_cli(args.split_off(1)));
    }
    if args.first().map(String::as_str) == Some("submit") {
        std::process::exit(victima_bench::service::submit_cli(args.split_off(1)));
    }
    if args.first().map(String::as_str) == Some("status") {
        std::process::exit(victima_bench::service::status_cli(args.split_off(1)));
    }
    if args.first().map(String::as_str) == Some("profile") {
        std::process::exit(profile_cli(args.split_off(1)));
    }
    let quick = take_flag(&mut args, "--quick");
    let check = take_flag(&mut args, "--check");
    let save_baselines = take_flag(&mut args, "--save-baselines");
    // Explicit worker count: overrides the ambient `VICTIMA_JOBS` without
    // touching the environment, so runs are reproducible from the command
    // line alone.
    let jobs: Option<usize> = flag_value(&mut args, "--jobs").map(|v| {
        v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            eprintln!("--jobs needs a positive integer");
            std::process::exit(2);
        })
    });
    let format_flag = flag_value(&mut args, "--format").map(|v| {
        Format::parse(&v).unwrap_or_else(|| {
            eprintln!("unknown format {v:?} (pick text, json, jsonl, csv or md)");
            std::process::exit(2);
        })
    });
    let sampling = flag_value(&mut args, "--sampling").map(|v| {
        sim::SamplingConfig::parse(&v).unwrap_or_else(|e| {
            eprintln!("--sampling: {e}");
            std::process::exit(2);
        })
    });
    let scale = parse_scale(&mut args);
    let out_dir = flag_value(&mut args, "--out").map(std::path::PathBuf::from);
    if (check || save_baselines) && (format_flag.is_some() || out_dir.is_some()) {
        eprintln!("--check/--save-baselines use the baseline JSON format; --format/--out don't apply");
        std::process::exit(2);
    }
    if (check || save_baselines) && sampling.is_some() {
        eprintln!("--sampling changes results; the pinned --check/--save-baselines profile is full-detail");
        std::process::exit(2);
    }
    if (check || save_baselines) && scale.is_some() {
        eprintln!("--scale changes results; --check/--save-baselines pin each baseline's own profile");
        std::process::exit(2);
    }
    let format = format_flag.unwrap_or(Format::Text);

    if take_flag(&mut args, "--list") {
        println!("experiments:");
        for id in experiments::checked_ids() {
            println!("  {id}");
        }
        println!("workloads:");
        for w in workloads::registry::WORKLOAD_NAMES {
            println!("  {w}");
        }
        println!("mixes (fig12: 2-core, fig13: 4-core):");
        for m in workloads::mixes::all() {
            println!("  {:<8} {}", m.name, m.slots.join("+"));
        }
        return;
    }
    // Ids come from --exp (comma-separated) and positionals; "all"
    // expands to every paper figure/table.
    let mut ids: Vec<String> = Vec::new();
    if let Some(list) = flag_value(&mut args, "--exp") {
        ids.extend(list.split(',').map(str::to_owned));
    }
    if let Some(unknown) = args.iter().find(|a| a.starts_with('-') && *a != "-") {
        eprintln!("unknown flag {unknown}");
        usage();
    }
    ids.extend(args.iter().cloned());
    let mut resolved: Vec<&str> = Vec::new();
    for id in &ids {
        if id == "all" {
            resolved.extend(experiments::ALL_IDS);
        } else {
            resolved.push(id.as_str());
        }
    }
    if resolved.is_empty() {
        if check || save_baselines {
            resolved = experiments::checked_ids();
        } else {
            usage();
        }
    }
    let mut seen = std::collections::HashSet::new();
    resolved.retain(|id| seen.insert(*id));

    let mut ctx = if check || save_baselines {
        ExpCtx::check()
    } else if quick {
        ExpCtx::quick_at(scale.unwrap_or(workloads::Scale::Full))
    } else {
        ExpCtx::at_scale(scale.unwrap_or(workloads::Scale::Full))
    };
    if let Some(n) = jobs {
        ctx = ctx.with_jobs(n);
    }
    if let Some(s) = sampling {
        ctx = ctx.with_sampling(s);
    }

    let start = std::time::Instant::now();
    let mut reports: Vec<ExperimentReport> = Vec::new();
    for id in &resolved {
        match experiments::by_id(&ctx, id) {
            Some(batch) => reports.extend(batch),
            None => {
                eprintln!("unknown experiment: {id} (try --list)");
                std::process::exit(2);
            }
        }
    }

    let status = if save_baselines {
        write_baselines(&reports)
    } else if check {
        run_check(&reports)
    } else {
        emit(&reports, format, out_dir.as_deref())
    };
    eprintln!("[experiments completed in {:.1}s]", start.elapsed().as_secs_f64());
    std::process::exit(status);
}

/// Writes per-experiment artifacts (and the combined `REPORT.md`) under
/// `dir`, or streams the chosen format to stdout when no `--out` is given.
fn emit(reports: &[ExperimentReport], format: Format, dir: Option<&std::path::Path>) -> i32 {
    let Some(dir) = dir else {
        match format {
            Format::Md => print!("{}", report::markdown::render_combined(reports)),
            Format::Text => print!("{}", report::text::render_all(reports)),
            _ => {
                for r in reports {
                    print!("{}", format.render(r));
                }
            }
        }
        return 0;
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return 1;
    }
    for r in reports {
        let path = dir.join(format!("{}.{}", r.id, format.extension()));
        if let Err(e) = std::fs::write(&path, format.render(r)) {
            eprintln!("cannot write {}: {e}", path.display());
            return 1;
        }
    }
    let combined = dir.join("REPORT.md");
    if let Err(e) = std::fs::write(&combined, report::markdown::render_combined(reports)) {
        eprintln!("cannot write {}: {e}", combined.display());
        return 1;
    }
    eprintln!("[wrote {} artifact(s) + REPORT.md to {}]", reports.len(), dir.display());
    0
}

/// Regenerates the committed baselines (one JSON per experiment).
fn write_baselines(reports: &[ExperimentReport]) -> i32 {
    if let Err(e) = std::fs::create_dir_all(BASELINE_DIR) {
        eprintln!("cannot create {BASELINE_DIR}: {e}");
        return 1;
    }
    for r in reports {
        let path = std::path::Path::new(BASELINE_DIR).join(format!("{}.json", r.id));
        if let Err(e) = std::fs::write(&path, report::json::to_json(r)) {
            eprintln!("cannot write {}: {e}", path.display());
            return 1;
        }
        println!("baseline saved: {}", path.display());
    }
    0
}

/// Diffs fresh reports against the committed baselines; returns the
/// process exit status (0 = all within tolerance).
fn run_check(reports: &[ExperimentReport]) -> i32 {
    let mut failed = false;
    for r in reports {
        let path = std::path::Path::new(BASELINE_DIR).join(format!("{}.json", r.id));
        let baseline = match std::fs::read_to_string(&path) {
            Ok(text) => match report::json::from_json(&text) {
                Ok(b) => b,
                Err(e) => {
                    println!("FAIL {}: baseline unreadable: {e}", r.id);
                    failed = true;
                    continue;
                }
            },
            Err(e) => {
                println!("FAIL {}: no baseline at {} ({e}); run --save-baselines", r.id, path.display());
                failed = true;
                continue;
            }
        };
        let outcome = report::check_report(r, &baseline);
        if outcome.passed() {
            println!("ok   {}", outcome.summary());
        } else {
            failed = true;
            println!("FAIL {}", outcome.summary());
            for m in &outcome.provenance_mismatches {
                println!("       provenance {m}");
            }
            for m in &outcome.missing {
                println!("       missing metric {m}");
            }
            for m in &outcome.unexpected {
                println!("       unexpected metric {m} (baseline refresh needed?)");
            }
            for d in &outcome.failures {
                println!("       {d}");
            }
        }
    }
    if failed {
        1
    } else {
        println!("check passed: {} experiment(s) match their baselines", reports.len());
        0
    }
}

/// `experiments profile [ids...] [--jobs N] [--scale S] [--format F]
/// [--out FILE]` — run experiments with full observability and write the
/// per-phase span breakdown to `BENCH_obs.json` (`VICTIMA_OBS_OUT` or
/// `--out` override), plus a human rendering on stdout. Defaults to the
/// pinned `--check` profile over every checked experiment, so a bare
/// `profile` answers "where does the regression gate spend its time?".
fn profile_cli(mut args: Vec<String>) -> i32 {
    let jobs: Option<usize> = flag_value(&mut args, "--jobs").map(|v| {
        v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            eprintln!("--jobs needs a positive integer");
            std::process::exit(2);
        })
    });
    let scale = parse_scale(&mut args);
    let format = flag_value(&mut args, "--format")
        .map(|v| {
            Format::parse(&v).unwrap_or_else(|| {
                eprintln!("unknown format {v:?} (pick text, json, jsonl, csv or md)");
                std::process::exit(2);
            })
        })
        .unwrap_or(Format::Text);
    let out = flag_value(&mut args, "--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(victima_bench::profile::artifact_path);
    if let Some(unknown) = args.iter().find(|a| a.starts_with('-')) {
        eprintln!("profile: unknown flag {unknown}");
        usage();
    }
    let ids: Vec<&str> =
        if args.is_empty() { experiments::checked_ids() } else { args.iter().map(String::as_str).collect() };
    let mut ctx = match scale {
        Some(s) => ExpCtx::at_scale(s),
        None => ExpCtx::check(),
    };
    if let Some(n) = jobs {
        ctx = ctx.with_jobs(n);
    }
    let ctx = ctx.with_obs();
    let start = std::time::Instant::now();
    match victima_bench::profile::profile_report(&ctx, &ids) {
        Ok(r) => {
            if let Err(e) = std::fs::write(&out, report::json::to_json(&r)) {
                eprintln!("cannot write {}: {e}", out.display());
                return 1;
            }
            print!("{}", format.render(&r));
            eprintln!(
                "[profiled {} experiment(s) in {:.1}s; artifact at {}]",
                ids.len(),
                start.elapsed().as_secs_f64(),
                out.display()
            );
            0
        }
        Err(e) => {
            eprintln!("profile failed: {e}");
            2
        }
    }
}

/// Default trace-recording budgets (the pinned `--check` profile, so a
/// bare `trace record` on a Tiny workload is committed-baseline sized).
const TRACE_WARMUP: u64 = 5_000;
const TRACE_INSTR: u64 = 50_000;

/// Resolves the `--scale` flag; `None` when absent so each surface
/// applies its own default (Tiny for the trace/ckpt CLIs, Full for the
/// experiment suite).
fn parse_scale(args: &mut Vec<String>) -> Option<workloads::Scale> {
    flag_value(args, "--scale").map(|v| {
        workloads::Scale::parse(&v).unwrap_or_else(|| {
            eprintln!("unknown scale {v:?} (pick tiny, small, full or paper)");
            std::process::exit(2);
        })
    })
}

/// Resolves the `--config` name for the trace subcommands (the same
/// registry the sweep service validates against).
fn config_by_name(name: &str) -> Option<sim::SystemConfig> {
    sim::SystemConfig::by_name(name)
}

/// `experiments trace <record|replay|info> …` — see `usage()`.
fn trace_cli(mut args: Vec<String>) -> i32 {
    if args.is_empty() {
        usage();
    }
    let sub = args.remove(0);
    let cfg = flag_value(&mut args, "--config")
        .map(|v| {
            config_by_name(&v).unwrap_or_else(|| {
                eprintln!("unknown config {v:?} (pick radix, victima, victima+stlb or pom)");
                std::process::exit(2);
            })
        })
        .unwrap_or_else(sim::SystemConfig::radix);
    let format = flag_value(&mut args, "--format")
        .map(|v| {
            Format::parse(&v).unwrap_or_else(|| {
                eprintln!("unknown format {v:?} (pick text, json, jsonl, csv or md)");
                std::process::exit(2);
            })
        })
        .unwrap_or(Format::Text);
    let out = flag_value(&mut args, "--out").map(std::path::PathBuf::from);
    let jobs: usize = flag_value(&mut args, "--jobs")
        .map(|v| {
            v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                eprintln!("--jobs needs a positive integer");
                std::process::exit(2);
            })
        })
        .unwrap_or_else(|| sim::SimEngine::new().jobs());
    let parse_u64 = |args: &mut Vec<String>, flag: &str, default: u64| -> u64 {
        flag_value(args, flag)
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("{flag} needs an unsigned integer");
                    std::process::exit(2);
                })
            })
            .unwrap_or(default)
    };

    match sub.as_str() {
        "record" => {
            let seed = parse_u64(&mut args, "--seed", vm_types::DEFAULT_SEED);
            let warmup = parse_u64(&mut args, "--warmup", TRACE_WARMUP);
            let instr = parse_u64(&mut args, "--instr", TRACE_INSTR);
            let scale = parse_scale(&mut args).unwrap_or(workloads::Scale::Tiny);
            let Some(out) = out else {
                eprintln!("trace record needs --out FILE");
                return 2;
            };
            let [workload] = args.as_slice() else {
                eprintln!("trace record takes exactly one workload name");
                return 2;
            };
            match victima_bench::trace::record(workload, &cfg, scale, seed, warmup, instr, &out) {
                Ok(s) => {
                    println!(
                        "recorded {}: {} records ({} loads, {} stores) / {} instructions, {} chunk(s), {} bytes",
                        out.display(),
                        s.counts.records,
                        s.counts.loads,
                        s.counts.stores,
                        s.counts.instructions,
                        s.chunks,
                        s.bytes
                    );
                    0
                }
                Err(e) => {
                    eprintln!("trace record failed: {e}");
                    1
                }
            }
        }
        "replay" | "info" => {
            let [file] = args.as_slice() else {
                eprintln!("trace {sub} takes exactly one trace file");
                return 2;
            };
            let path = std::path::Path::new(file);
            let report = if sub == "replay" {
                victima_bench::trace::replay_report(path, &cfg, jobs)
            } else {
                victima_bench::trace::info_report(path)
            };
            match report {
                Ok(r) => emit(&[r], format, out.as_deref()),
                Err(e) => {
                    eprintln!("trace {sub} failed: {e}");
                    1
                }
            }
        }
        _ => usage(),
    }
}

/// `experiments ckpt <save|resume|info> …` — see `usage()`.
fn ckpt_cli(mut args: Vec<String>) -> i32 {
    if args.is_empty() {
        usage();
    }
    let sub = args.remove(0);
    let format = flag_value(&mut args, "--format")
        .map(|v| {
            Format::parse(&v).unwrap_or_else(|| {
                eprintln!("unknown format {v:?} (pick text, json, jsonl, csv or md)");
                std::process::exit(2);
            })
        })
        .unwrap_or(Format::Text);
    let out = flag_value(&mut args, "--out").map(std::path::PathBuf::from);

    match sub.as_str() {
        "save" => {
            let cfg = flag_value(&mut args, "--config")
                .map(|v| {
                    config_by_name(&v).unwrap_or_else(|| {
                        eprintln!("unknown config {v:?} (pick radix, victima, victima+stlb or pom)");
                        std::process::exit(2);
                    })
                })
                .unwrap_or_else(sim::SystemConfig::radix);
            let scale = parse_scale(&mut args).unwrap_or(workloads::Scale::Tiny);
            let seed = flag_value(&mut args, "--seed")
                .map(|v| {
                    v.parse().unwrap_or_else(|_| {
                        eprintln!("--seed needs an unsigned integer");
                        std::process::exit(2);
                    })
                })
                .unwrap_or(vm_types::DEFAULT_SEED);
            let warmup = flag_value(&mut args, "--warmup")
                .map(|v| {
                    v.parse().unwrap_or_else(|_| {
                        eprintln!("--warmup needs an unsigned integer");
                        std::process::exit(2);
                    })
                })
                .unwrap_or(scale.default_budget().0);
            let Some(out) = out else {
                eprintln!("ckpt save needs --out FILE");
                return 2;
            };
            let [workload] = args.as_slice() else {
                eprintln!("ckpt save takes exactly one workload name");
                return 2;
            };
            match victima_bench::ckpt::save(workload, &cfg, scale, seed, warmup, &out) {
                Ok(ck) => {
                    let words: usize = ck.sections().map(|(_, w)| w.len()).sum();
                    println!(
                        "saved {}: {} under {} @ {} scale, {} warm-up instructions, {} stream refs, {} sections / {} state words",
                        out.display(),
                        ck.meta.workload,
                        ck.meta.config,
                        ck.meta.scale.name(),
                        ck.meta.warmup,
                        ck.meta.refs_consumed,
                        ck.sections().count(),
                        words
                    );
                    0
                }
                Err(e) => {
                    eprintln!("ckpt save failed: {e}");
                    1
                }
            }
        }
        "resume" | "info" => {
            let instr: Option<u64> = flag_value(&mut args, "--instr").map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--instr needs an unsigned integer");
                    std::process::exit(2);
                })
            });
            let [file] = args.as_slice() else {
                eprintln!("ckpt {sub} takes exactly one checkpoint file");
                return 2;
            };
            let path = std::path::Path::new(file);
            let report = if sub == "resume" {
                victima_bench::ckpt::resume_report(path, instr)
            } else {
                victima_bench::ckpt::info_report(path)
            };
            match report {
                Ok(r) => emit(&[r], format, out.as_deref()),
                Err(e) => {
                    eprintln!("ckpt {sub} failed: {e}");
                    1
                }
            }
        }
        _ => usage(),
    }
}
