//! Figs. 12–13: multi-programmed multi-core results. Each mix runs one
//! process per core (pinned, quantum-interleaved) over a shared LLC and
//! frame pool; radix, POM-TLB and Victima are compared by weighted
//! speedup — each process's co-running IPC over its alone-run IPC on the
//! radix baseline (alone runs are shared with the other figures through
//! the run cache). Per-core translation pressure (L2 TLB MPKI, mean PTW
//! latency) rides along in the row data.

use crate::{Column, ExpCtx, ExperimentReport, Metric, Unit, Value};
use sim::multicore::{run_mix_pinned, MixRunResult};
use sim::{weighted_speedup, SystemConfig};
use vm_types::geomean;
use workloads::mixes::{Mix, MIXES_2, MIXES_4};

/// Scheduler quantum for the mix runs: fine enough to interleave LLC
/// traffic, coarse enough to stay cheap.
const QUANTUM: u64 = 1_000;

fn mechanisms() -> Vec<SystemConfig> {
    vec![SystemConfig::radix(), SystemConfig::pom_tlb(), SystemConfig::victima()]
}

/// Fig. 12: 2-core mixes.
pub fn fig12(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    vec![run_fig(ctx, "fig12", "Weighted speedup of 2-core mixes (shared LLC)", &MIXES_2)]
}

/// Fig. 13: 4-core mixes.
pub fn fig13(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    vec![run_fig(ctx, "fig13", "Weighted speedup of 4-core mixes (shared LLC)", &MIXES_4)]
}

fn run_fig(ctx: &ExpCtx, id: &str, title: &str, mixes: &[Mix]) -> ExperimentReport {
    let mechs = mechanisms();
    let runner = ctx.runner();
    let (scale, warmup, instructions) = (runner.scale, runner.warmup, runner.instructions);

    // Every (mix, mechanism) pair fans out over the engine's worker pool;
    // one mix run is itself a deterministic single-threaded simulation.
    let pairs: Vec<(&Mix, SystemConfig)> =
        mixes.iter().flat_map(|m| mechs.iter().map(move |c| (m, c.clone()))).collect();
    let results: Vec<MixRunResult> = ctx
        .engine()
        .map(pairs, |_, (mix, cfg)| run_mix_pinned(cfg, mix, scale, QUANTUM, warmup, instructions));

    // Alone-run IPCs (radix baseline, single core) come from the radix
    // suite — one parallel batch, shared with the native figures through
    // the run cache.
    let radix = SystemConfig::radix();
    ctx.suite(&radix);
    let alone_ipc = |workload: &'static str| ctx.one(&radix, workload).ipc();

    let mut provenance = ctx.provenance(mechs.iter());
    provenance.workloads = mixes.iter().map(|m| m.name.to_owned()).collect();
    let mut r = ExperimentReport::new(id, title)
        .with_columns([
            Column::text("system"),
            Column::new("weighted speedup", Unit::Factor),
            Column::new("avg core L2TLB MPKI", Unit::Mpki),
            Column::new("mean PTW latency", Unit::Cycles),
            Column::new("throughput (sum IPC)", Unit::Ipc),
        ])
        .with_provenance(provenance);

    // Weighted speedups per (mix, mechanism), mechanism-major for GMEANs.
    let mut ws_by_mech: Vec<Vec<f64>> = vec![Vec::new(); mechs.len()];
    for (pi, res) in results.iter().enumerate() {
        let (mi, ci) = (pi / mechs.len(), pi % mechs.len());
        let mix = &mixes[mi];
        let multi: Vec<f64> = res.procs.iter().map(|p| p.ipc).collect();
        let alone: Vec<f64> = res.procs.iter().map(|p| alone_ipc(p.workload)).collect();
        let ws = weighted_speedup(&multi, &alone);
        ws_by_mech[ci].push(ws);
        let cores = res.cores.len() as f64;
        let mpki = res.cores.iter().map(|c| c.l2_tlb_mpki()).sum::<f64>() / cores;
        let walk = res.cores.iter().map(|c| c.ptw_latency_mean).sum::<f64>() / cores;
        let throughput: f64 = multi.iter().sum();
        r.push_row(
            mix.name,
            [
                Value::from(res.config_name.as_str()),
                Value::from(ws),
                Value::from(mpki),
                Value::from(walk),
                Value::from(throughput),
            ],
        );
    }

    for (cfg, series) in mechs.iter().zip(&ws_by_mech) {
        r.push_metric(Metric::new(format!("gmean_ws/{}", cfg.name), geomean(series), Unit::Factor));
    }
    let victima_ws = &ws_by_mech[2];
    let radix_ws = &ws_by_mech[0];
    let wins = victima_ws.iter().zip(radix_ws).filter(|(v, r)| v >= r).count();
    r.push_metric(Metric::new("victima_wins_vs_radix", wins as f64, Unit::Count).with_tolerance(0.0));
    let gain: Vec<f64> = victima_ws.iter().zip(radix_ws).map(|(v, r)| v / r).collect();
    r.push_metric(Metric::new("gmean_victima_vs_radix", geomean(&gain), Unit::Factor));
    r.note(
        "weighted speedup = mean(IPC_mix / IPC_alone-on-radix); paper: Victima's gains grow with \
         core count as co-runners fight over the shared LLC",
    );
    r
}
