//! Fig. 8: adding a 64K-entry hardware L3 TLB with access latencies from
//! 15 to 39 cycles, speedup over the two-level baseline.

use crate::{x_factor, ExpCtx, Table};
use sim::SystemConfig;
use tlb_sim::configs::L3_TLB_LATENCY_SWEEP;
use vm_types::geomean;
use workloads::registry::WORKLOAD_NAMES;

/// Runs the Fig. 8 sweep.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let base = ctx.suite(&SystemConfig::radix());
    let cfgs: Vec<SystemConfig> =
        L3_TLB_LATENCY_SWEEP.iter().map(|&l| SystemConfig::with_l3_tlb(65536, l)).collect();
    let results = ctx.suites(&cfgs);
    let mut t = Table::new("fig08", "Speedup of a 64K-entry L3 TLB vs. its access latency").headers(
        std::iter::once("workload".to_string())
            .chain(L3_TLB_LATENCY_SWEEP.iter().map(|l| format!("64K-{l}cyc"))),
    );
    for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for r in &results {
            row.push(x_factor(r[wi].speedup_over(&base[wi])));
        }
        t.row(row);
    }
    let mut gm = vec!["GMEAN".to_string()];
    for r in &results {
        let sp: Vec<f64> = r.iter().zip(&base).map(|(s, b)| s.speedup_over(b)).collect();
        gm.push(x_factor(geomean(&sp)));
    }
    t.row(gm);
    t.note("paper: 64K L3 TLB at an aggressive 15 cycles gives +2.9% GMEAN (< the +4.0% of a 64K L2 TLB)");
    vec![t]
}
