//! Fig. 8: adding a 64K-entry hardware L3 TLB with access latencies from
//! 15 to 39 cycles, speedup over the two-level baseline.

use crate::{workload_matrix, ExpCtx, ExperimentReport, Metric, Unit};
use sim::SystemConfig;
use tlb_sim::configs::L3_TLB_LATENCY_SWEEP;
use vm_types::geomean;

/// Runs the Fig. 8 sweep.
pub fn run(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let base_cfg = SystemConfig::radix();
    let base = ctx.suite(&base_cfg);
    let cfgs: Vec<SystemConfig> =
        L3_TLB_LATENCY_SWEEP.iter().map(|&l| SystemConfig::with_l3_tlb(65536, l)).collect();
    let results = ctx.suites(&cfgs);
    let columns: Vec<String> = L3_TLB_LATENCY_SWEEP.iter().map(|l| format!("64K-{l}cyc")).collect();
    let values: Vec<Vec<f64>> =
        results.iter().map(|r| r.iter().zip(&base).map(|(s, b)| s.speedup_over(b)).collect()).collect();
    let mut r = workload_matrix(
        "fig08",
        "Speedup of a 64K-entry L3 TLB vs. its access latency",
        Unit::Factor,
        &columns,
        &values,
    )
    .with_provenance(ctx.provenance(std::iter::once(&base_cfg).chain(&cfgs)));
    for (col, series) in columns.iter().zip(&values) {
        r.push_metric(Metric::new(format!("gmean_speedup/{col}"), geomean(series), Unit::Factor));
    }
    r.note("paper: 64K L3 TLB at an aggressive 15 cycles gives +2.9% GMEAN (< the +4.0% of a 64K L2 TLB)");
    vec![r]
}
