//! Figs. 27–29: virtualised-execution results over the nested-paging
//! baseline: speedups (27), guest/host PTW reductions (28) and the L2 TLB
//! miss-latency breakdown (29).

use crate::{pct, x_factor, ExpCtx, Table};
use sim::{SimStats, SystemConfig};
use vm_types::geomean;
use workloads::registry::WORKLOAD_NAMES;

fn run_all(ctx: &ExpCtx) -> (Vec<SimStats>, Vec<(&'static str, Vec<SimStats>)>) {
    let base = ctx.suite(&SystemConfig::nested_paging());
    let systems = [
        ("POM-TLB", SystemConfig::pom_tlb_virt()),
        ("I-SP", SystemConfig::ideal_shadow_paging()),
        ("Victima", SystemConfig::victima_virt()),
    ];
    let cfgs: Vec<SystemConfig> = systems.iter().map(|(_, c)| c.clone()).collect();
    let results = ctx.suites(&cfgs);
    (base, systems.iter().map(|(n, _)| *n).zip(results).collect())
}

/// Fig. 27: speedup over nested paging.
pub fn fig27(ctx: &ExpCtx) -> Vec<Table> {
    let (base, results) = run_all(ctx);
    let mut t = Table::new("fig27", "Speedup over Nested Paging (virtualised)")
        .headers(std::iter::once("workload").chain(results.iter().map(|(n, _)| *n)));
    for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for (_, r) in &results {
            row.push(x_factor(r[wi].speedup_over(&base[wi])));
        }
        t.row(row);
    }
    let mut gm = vec!["GMEAN".to_string()];
    for (_, r) in &results {
        let sp: Vec<f64> = r.iter().zip(&base).map(|(s, b)| s.speedup_over(b)).collect();
        gm.push(x_factor(geomean(&sp)));
    }
    t.row(gm);
    t.note("paper GMEANs over NP: POM +7.2%, I-SP +22.7%, Victima +28.7%");
    vec![t]
}

/// Fig. 28: reduction in guest and host PTWs over nested paging.
pub fn fig28(ctx: &ExpCtx) -> Vec<Table> {
    let (base, results) = run_all(ctx);
    let keep = ["POM-TLB", "Victima"];
    let mut t = Table::new("fig28", "Reduction in guest/host PTWs over Nested Paging").headers([
        "workload",
        "POM guest",
        "POM host",
        "Victima guest",
        "Victima host",
    ]);
    let mut sums = [0.0f64; 4];
    for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for (ki, k) in keep.iter().enumerate() {
            let r = &results.iter().find(|(n, _)| n == k).expect("system present").1;
            let g = r[wi].ptw_reduction_vs(&base[wi]);
            let h = r[wi].host_ptw_reduction_vs(&base[wi]);
            sums[ki * 2] += g;
            sums[ki * 2 + 1] += h;
            row.push(pct(g));
            row.push(pct(h));
        }
        t.row(row);
    }
    let n = WORKLOAD_NAMES.len() as f64;
    t.row(std::iter::once("AVG".to_string()).chain(sums.iter().map(|s| pct(s / n))).collect::<Vec<_>>());
    t.note("paper: Victima cuts guest PTWs by 50% and host PTWs by 99%");
    vec![t]
}

/// Fig. 29: L2 TLB miss latency normalised to NP, host/guest components.
pub fn fig29(ctx: &ExpCtx) -> Vec<Table> {
    let (base, results) = run_all(ctx);
    let mut t =
        Table::new("fig29", "Virtualised L2 TLB miss latency normalised to NP (components: host / guest)")
            .headers(["workload", "system", "total", "host", "guest"]);
    for (k, r) in &results {
        let mut totals = Vec::new();
        for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
            let s = &r[wi];
            let b = base[wi].l2_miss_latency().max(1e-9);
            let misses = s.l2_tlb_misses.max(1) as f64;
            totals.push(s.l2_miss_latency() / b);
            t.row([
                name.to_string(),
                k.to_string(),
                pct(s.l2_miss_latency() / b),
                pct(s.l2_miss_host_component as f64 / misses / b),
                pct((s.l2_miss_walk_component + s.l2_miss_cache_component + s.l2_miss_pom_component) as f64
                    / misses
                    / b),
            ]);
        }
        let avg = totals.iter().sum::<f64>() / totals.len() as f64;
        t.row(["MEAN".to_string(), k.to_string(), pct(avg), String::new(), String::new()]);
    }
    t.note("paper: Victima cuts host latency to ~1% of NP and guest latency by 60%");
    vec![t]
}
