//! Figs. 27–29: virtualised-execution results over the nested-paging
//! baseline: speedups (27), guest/host PTW reductions (28) and the L2 TLB
//! miss-latency breakdown (29).

use crate::{workload_matrix, Column, ExpCtx, ExperimentReport, Metric, Unit, Value};
use sim::{SimStats, SystemConfig};
use vm_types::geomean;
use workloads::registry::WORKLOAD_NAMES;

/// The swept systems beyond the nested-paging baseline — the single
/// source for both the runs and the recorded provenance.
fn systems() -> Vec<(&'static str, SystemConfig)> {
    vec![
        ("POM-TLB", SystemConfig::pom_tlb_virt()),
        ("I-SP", SystemConfig::ideal_shadow_paging()),
        ("Victima", SystemConfig::victima_virt()),
    ]
}

fn run_all(ctx: &ExpCtx) -> (Vec<SimStats>, Vec<(&'static str, Vec<SimStats>)>) {
    let base = ctx.suite(&SystemConfig::nested_paging());
    let sys = systems();
    let cfgs: Vec<SystemConfig> = sys.iter().map(|(_, c)| c.clone()).collect();
    let results = ctx.suites(&cfgs);
    (base, sys.iter().map(|(n, _)| *n).zip(results).collect())
}

fn virt_provenance(ctx: &ExpCtx) -> report::Provenance {
    let base = SystemConfig::nested_paging();
    let sys = systems();
    ctx.provenance(std::iter::once(&base).chain(sys.iter().map(|(_, c)| c)))
}

/// Fig. 27: speedup over nested paging.
pub fn fig27(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let (base, results) = run_all(ctx);
    let columns: Vec<String> = results.iter().map(|(n, _)| (*n).to_owned()).collect();
    let values: Vec<Vec<f64>> =
        results.iter().map(|(_, r)| r.iter().zip(&base).map(|(s, b)| s.speedup_over(b)).collect()).collect();
    let mut r =
        workload_matrix("fig27", "Speedup over Nested Paging (virtualised)", Unit::Factor, &columns, &values)
            .with_provenance(virt_provenance(ctx));
    for (col, series) in columns.iter().zip(&values) {
        r.push_metric(Metric::new(format!("gmean_speedup/{col}"), geomean(series), Unit::Factor));
    }
    r.note("paper GMEANs over NP: POM +7.2%, I-SP +22.7%, Victima +28.7%");
    vec![r]
}

/// Fig. 28: reduction in guest and host PTWs over nested paging.
pub fn fig28(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let (base, results) = run_all(ctx);
    let keep = ["POM-TLB", "Victima"];
    let columns: Vec<String> =
        keep.iter().flat_map(|k| [format!("{k} guest"), format!("{k} host")]).collect();
    let mut values: Vec<Vec<f64>> = Vec::new();
    for k in keep {
        let r = &results.iter().find(|(n, _)| *n == k).expect("system present").1;
        values.push(r.iter().zip(&base).map(|(s, b)| s.ptw_reduction_vs(b)).collect());
        values.push(r.iter().zip(&base).map(|(s, b)| s.host_ptw_reduction_vs(b)).collect());
    }
    let mut r = workload_matrix(
        "fig28",
        "Reduction in guest/host PTWs over Nested Paging",
        Unit::Percent,
        &columns,
        &values,
    )
    .with_provenance(virt_provenance(ctx));
    for (col, series) in columns.iter().zip(&values) {
        let avg = series.iter().sum::<f64>() / series.len() as f64;
        r.push_metric(Metric::new(format!("avg_ptw_reduction/{col}"), avg, Unit::Percent));
    }
    r.note("paper: Victima cuts guest PTWs by 50% and host PTWs by 99%");
    vec![r]
}

/// Fig. 29: L2 TLB miss latency normalised to NP, host/guest components.
pub fn fig29(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let (base, results) = run_all(ctx);
    let mut r = ExperimentReport::new(
        "fig29",
        "Virtualised L2 TLB miss latency normalised to NP (components: host / guest)",
    )
    .with_columns([
        Column::text("system"),
        Column::new("total", Unit::Percent),
        Column::new("host", Unit::Percent),
        Column::new("guest", Unit::Percent),
    ])
    .with_provenance(virt_provenance(ctx));
    for (k, sys) in &results {
        let mut totals = Vec::new();
        for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
            let s = &sys[wi];
            let b = base[wi].l2_miss_latency().max(1e-9);
            let misses = s.l2_tlb_misses.max(1) as f64;
            totals.push(s.l2_miss_latency() / b);
            r.push_row(
                *name,
                [
                    Value::from(*k),
                    Value::from(s.l2_miss_latency() / b),
                    Value::from(s.l2_miss_host_component as f64 / misses / b),
                    Value::from(
                        (s.l2_miss_walk_component + s.l2_miss_cache_component + s.l2_miss_pom_component)
                            as f64
                            / misses
                            / b,
                    ),
                ],
            );
        }
        let avg = totals.iter().sum::<f64>() / totals.len() as f64;
        r.push_metric(Metric::new(format!("mean_norm_latency/{k}"), avg, Unit::Percent));
    }
    r.note("paper: Victima cuts host latency to ~1% of NP and guest latency by 60%");
    vec![r]
}
