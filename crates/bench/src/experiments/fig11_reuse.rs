//! Fig. 11: reuse-level distribution of L2 cache data blocks on the
//! baseline — the underutilisation argument (≈92% of blocks see zero
//! reuse).

use crate::{pct, ExpCtx, Table};
use sim::SystemConfig;
use vm_types::{ReuseHistogram, REUSE_BUCKET_LABELS};
use workloads::registry::WORKLOAD_NAMES;

/// Runs the baseline suite and reports per-workload reuse distributions.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let stats = ctx.suite(&SystemConfig::radix());
    let mut t = Table::new("fig11", "Reuse-level distribution of L2 data blocks (baseline)")
        .headers(std::iter::once("workload").chain(REUSE_BUCKET_LABELS));
    let mut merged = ReuseHistogram::new();
    for (name, s) in WORKLOAD_NAMES.iter().zip(&stats) {
        merged.merge(&s.l2_data_reuse);
        let fr = s.l2_data_reuse.fractions();
        t.row(std::iter::once(name.to_string()).chain(fr.iter().map(|&f| pct(f))).collect::<Vec<_>>());
    }
    let fr = merged.fractions();
    t.row(std::iter::once("ALL".to_string()).chain(fr.iter().map(|&f| pct(f))).collect::<Vec<_>>());
    t.note(format!("zero-reuse share = {} (paper: 92% zero reuse, 8% reuse ≥ 1)", pct(fr[0])));
    vec![t]
}
