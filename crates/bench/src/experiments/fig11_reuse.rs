//! Fig. 11: reuse-level distribution of L2 cache data blocks on the
//! baseline — the underutilisation argument (≈92% of blocks see zero
//! reuse).

use crate::{Column, ExpCtx, ExperimentReport, Metric, Unit, Value};
use sim::SystemConfig;
use vm_types::{ReuseHistogram, REUSE_BUCKET_LABELS};
use workloads::registry::WORKLOAD_NAMES;

/// Runs the baseline suite and reports per-workload reuse distributions.
pub fn run(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let cfg = SystemConfig::radix();
    let stats = ctx.suite(&cfg);
    let mut r = ExperimentReport::new("fig11", "Reuse-level distribution of L2 data blocks (baseline)")
        .with_columns(REUSE_BUCKET_LABELS.iter().map(|&l| Column::new(l, Unit::Percent)))
        .with_provenance(ctx.provenance([&cfg]));
    let mut merged = ReuseHistogram::new();
    for (name, s) in WORKLOAD_NAMES.iter().zip(&stats) {
        merged.merge(&s.l2_data_reuse);
        r.push_row(*name, s.l2_data_reuse.fractions().iter().map(|&f| Value::from(f)));
    }
    let fr = merged.fractions();
    r.push_row("ALL", fr.iter().map(|&f| Value::from(f)));
    r.push_metric(Metric::new("zero_reuse_share", fr[0], Unit::Percent));
    r.note("paper: 92% of L2 data blocks see zero reuse, 8% reuse ≥ 1");
    vec![r]
}
