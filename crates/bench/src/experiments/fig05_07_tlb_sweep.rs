//! Figs. 5–7: the L2-TLB-size motivation study.
//!
//! - Fig. 5: L2 TLB MPKI as the TLB grows 1.5K → 64K entries.
//! - Fig. 6: speedup with *optimistic* (fixed 12-cycle) latencies.
//! - Fig. 7: speedup with CACTI-modelled latencies (13–39 cycles).

use crate::{workload_matrix, ExpCtx, ExperimentReport, Metric, Unit};
use sim::{SimStats, SystemConfig};
use tlb_sim::configs::{CACTI_L2_TLB_LATENCY, L2_TLB_SIZE_SWEEP};
use vm_types::geomean;

fn label(entries: usize) -> String {
    if entries >= 1024 && entries.is_multiple_of(1024) {
        format!("{}K", entries / 1024)
    } else {
        format!("{:.1}K", entries as f64 / 1024.0)
    }
}

/// Fig. 5: MPKI per workload for each L2 TLB size (12-cycle latency).
pub fn fig05(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let cfgs: Vec<SystemConfig> =
        L2_TLB_SIZE_SWEEP.iter().map(|&e| SystemConfig::with_l2_tlb(e, 12)).collect();
    let results = ctx.suites(&cfgs);
    let columns: Vec<String> = L2_TLB_SIZE_SWEEP.iter().map(|&e| label(e)).collect();
    let values: Vec<Vec<f64>> =
        results.iter().map(|r| r.iter().map(SimStats::l2_tlb_mpki).collect()).collect();
    let mut r = workload_matrix("fig05", "L2 TLB MPKI vs. L2 TLB size", Unit::Mpki, &columns, &values)
        .with_provenance(ctx.provenance(&cfgs));
    for (col, series) in columns.iter().zip(&values) {
        let avg = series.iter().sum::<f64>() / series.len() as f64;
        r.push_metric(Metric::new(format!("avg_mpki/{col}"), avg, Unit::Mpki));
    }
    r.note("paper: 1.5K → 64K reduces average MPKI 39 → 24 (-44%)");
    vec![r]
}

fn speedup_report(
    id: &'static str,
    title: &str,
    ctx: &ExpCtx,
    points: &[(usize, u64)],
    note: &str,
) -> Vec<ExperimentReport> {
    let base_cfg = SystemConfig::radix();
    let base = ctx.suite(&base_cfg);
    let cfgs: Vec<SystemConfig> = points.iter().map(|&(e, l)| SystemConfig::with_l2_tlb(e, l)).collect();
    let results = ctx.suites(&cfgs);
    let columns: Vec<String> = points.iter().map(|&(e, l)| format!("{}-{l}cyc", label(e))).collect();
    let values: Vec<Vec<f64>> =
        results.iter().map(|r| r.iter().zip(&base).map(|(s, b)| s.speedup_over(b)).collect()).collect();
    let mut r = workload_matrix(id, title, Unit::Factor, &columns, &values)
        .with_provenance(ctx.provenance(std::iter::once(&base_cfg).chain(&cfgs)));
    for (col, series) in columns.iter().zip(&values) {
        r.push_metric(Metric::new(format!("gmean_speedup/{col}"), geomean(series), Unit::Factor));
    }
    r.note(note);
    vec![r]
}

/// Fig. 6: speedup of larger L2 TLBs at a fixed optimistic 12-cycle
/// latency, over the 1.5K-entry baseline.
pub fn fig06(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let points: Vec<(usize, u64)> = L2_TLB_SIZE_SWEEP.iter().skip(1).map(|&e| (e, 12u64)).collect();
    speedup_report(
        "fig06",
        "Speedup of larger L2 TLBs, equal (optimistic) 12-cycle latency",
        ctx,
        &points,
        "paper: optimistic 64K gives +4.0% GMEAN",
    )
}

/// Fig. 7: speedup of larger L2 TLBs with CACTI-modelled latencies.
pub fn fig07(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    speedup_report(
        "fig07",
        "Speedup of larger L2 TLBs, CACTI-modelled latencies",
        ctx,
        &CACTI_L2_TLB_LATENCY,
        "paper: realistic 64K@39cyc gives only +0.8% GMEAN",
    )
}
