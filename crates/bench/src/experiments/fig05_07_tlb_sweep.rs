//! Figs. 5–7: the L2-TLB-size motivation study.
//!
//! - Fig. 5: L2 TLB MPKI as the TLB grows 1.5K → 64K entries.
//! - Fig. 6: speedup with *optimistic* (fixed 12-cycle) latencies.
//! - Fig. 7: speedup with CACTI-modelled latencies (13–39 cycles).

use crate::{x_factor, ExpCtx, Table};
use sim::{SimStats, SystemConfig};
use tlb_sim::configs::{CACTI_L2_TLB_LATENCY, L2_TLB_SIZE_SWEEP};
use vm_types::geomean;
use workloads::registry::WORKLOAD_NAMES;

fn label(entries: usize) -> String {
    if entries >= 1024 && entries.is_multiple_of(1024) {
        format!("{}K", entries / 1024)
    } else {
        format!("{:.1}K", entries as f64 / 1024.0)
    }
}

/// Fig. 5: MPKI per workload for each L2 TLB size (12-cycle latency).
pub fn fig05(ctx: &ExpCtx) -> Vec<Table> {
    let cfgs: Vec<SystemConfig> =
        L2_TLB_SIZE_SWEEP.iter().map(|&e| SystemConfig::with_l2_tlb(e, 12)).collect();
    let results = ctx.suites(&cfgs);
    let mut t = Table::new("fig05", "L2 TLB MPKI vs. L2 TLB size")
        .headers(std::iter::once("workload".to_string()).chain(L2_TLB_SIZE_SWEEP.iter().map(|&e| label(e))));
    for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for r in &results {
            row.push(format!("{:.1}", r[wi].l2_tlb_mpki()));
        }
        t.row(row);
    }
    let mut mean_row = vec!["AVG".to_string()];
    for r in &results {
        let avg = r.iter().map(SimStats::l2_tlb_mpki).sum::<f64>() / r.len() as f64;
        mean_row.push(format!("{avg:.1}"));
    }
    t.row(mean_row);
    t.note("paper: 1.5K → 64K reduces average MPKI 39 → 24 (-44%)".to_string());
    vec![t]
}

fn speedup_table(
    id: &'static str,
    title: &str,
    ctx: &ExpCtx,
    points: &[(usize, u64)],
    note: &str,
) -> Vec<Table> {
    let base = ctx.suite(&SystemConfig::radix());
    let cfgs: Vec<SystemConfig> = points.iter().map(|&(e, l)| SystemConfig::with_l2_tlb(e, l)).collect();
    let results = ctx.suites(&cfgs);
    let mut t = Table::new(id, title).headers(
        std::iter::once("workload".to_string())
            .chain(points.iter().map(|&(e, l)| format!("{}-{l}cyc", label(e)))),
    );
    for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for r in &results {
            row.push(x_factor(r[wi].speedup_over(&base[wi])));
        }
        t.row(row);
    }
    let mut gm = vec!["GMEAN".to_string()];
    for r in &results {
        let sp: Vec<f64> = r.iter().zip(&base).map(|(s, b)| s.speedup_over(b)).collect();
        gm.push(x_factor(geomean(&sp)));
    }
    t.row(gm);
    t.note(note.to_string());
    vec![t]
}

/// Fig. 6: speedup of larger L2 TLBs at a fixed optimistic 12-cycle
/// latency, over the 1.5K-entry baseline.
pub fn fig06(ctx: &ExpCtx) -> Vec<Table> {
    let points: Vec<(usize, u64)> = L2_TLB_SIZE_SWEEP.iter().skip(1).map(|&e| (e, 12u64)).collect();
    speedup_table(
        "fig06",
        "Speedup of larger L2 TLBs, equal (optimistic) 12-cycle latency",
        ctx,
        &points,
        "paper: optimistic 64K gives +4.0% GMEAN",
    )
}

/// Fig. 7: speedup of larger L2 TLBs with CACTI-modelled latencies.
pub fn fig07(ctx: &ExpCtx) -> Vec<Table> {
    speedup_table(
        "fig07",
        "Speedup of larger L2 TLBs, CACTI-modelled latencies",
        ctx,
        &CACTI_L2_TLB_LATENCY,
        "paper: realistic 64K@39cyc gives only +0.8% GMEAN",
    )
}
