//! Calibration probe (not a paper figure): per-workload baseline vitals
//! used to check that the simulator sits in the paper's operating regime
//! (Sec. 3: average L2 TLB MPKI ≈ 39, mean PTW latency ≈ 137 cycles,
//! ≈ 30% of cycles on translation).

use crate::{Column, ExpCtx, ExperimentReport, Metric, Unit, Value};
use sim::SystemConfig;
use vm_types::geomean;
use workloads::registry::WORKLOAD_NAMES;

/// Runs the baseline and reports per-workload vitals.
pub fn run(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let cfg = SystemConfig::radix();
    let stats = ctx.suite(&cfg);
    let mut r = ExperimentReport::new("calibrate", "Baseline (Radix) vitals per workload")
        .with_columns([
            Column::new("instr", Unit::Count),
            Column::new("refs", Unit::Count),
            Column::new("IPC", Unit::Ipc),
            Column::new("L1TLB-miss%", Unit::Percent),
            Column::new("L2TLB-MPKI", Unit::Mpki),
            Column::new("PTWs", Unit::Count),
            Column::new("PTW-mean", Unit::Cycles),
            Column::new("transl-share", Unit::Percent),
            Column::new("L2$-miss-lat", Unit::Cycles),
        ])
        .with_provenance(ctx.provenance([&cfg]));
    let mut mpkis = Vec::new();
    let mut shares = Vec::new();
    let mut ptw_means = Vec::new();
    let timing = cfg.timing;
    for (name, s) in WORKLOAD_NAMES.iter().zip(&stats) {
        let share = s.translation_cycle_share(timing.t_expose, timing.d_expose);
        mpkis.push(s.l2_tlb_mpki());
        shares.push(share);
        if s.ptw_latency_mean > 0.0 {
            ptw_means.push(s.ptw_latency_mean);
        }
        r.push_row(
            *name,
            [
                Value::from(s.instructions),
                Value::from(s.mem_refs),
                Value::from(s.ipc()),
                Value::from(s.l1_tlb_misses as f64 / (s.l1_tlb_hits + s.l1_tlb_misses).max(1) as f64),
                Value::from(s.l2_tlb_mpki()),
                Value::from(s.ptws),
                Value::from(s.ptw_latency_mean),
                Value::from(share),
                Value::from(s.l2_miss_latency()),
            ],
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    r.push_metric(Metric::new("avg_l2_tlb_mpki", avg(&mpkis), Unit::Mpki));
    r.push_metric(Metric::new("mean_ptw_latency", avg(&ptw_means), Unit::Cycles));
    r.push_metric(Metric::new("avg_translation_share", avg(&shares), Unit::Percent));
    r.push_metric(Metric::new(
        "gmean_ipc",
        geomean(&stats.iter().map(|s| s.ipc()).collect::<Vec<_>>()),
        Unit::Ipc,
    ));
    r.note("paper operating regime: avg L2 TLB MPKI ≈ 39, mean PTW latency ≈ 137, translation share ≈ 30%");
    vec![r]
}
