//! Calibration probe (not a paper figure): per-workload baseline vitals
//! used to check that the simulator sits in the paper's operating regime
//! (Sec. 3: average L2 TLB MPKI ≈ 39, mean PTW latency ≈ 137 cycles,
//! ≈ 30% of cycles on translation).

use crate::{pct, ExpCtx, Table};
use sim::SystemConfig;
use vm_types::geomean;
use workloads::registry::WORKLOAD_NAMES;

/// Runs the baseline and prints per-workload vitals.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let cfg = SystemConfig::radix();
    let stats = ctx.suite(&cfg);
    let mut t = Table::new("calibrate", "Baseline (Radix) vitals per workload").headers([
        "workload",
        "instr",
        "refs",
        "IPC",
        "L1TLB-miss%",
        "L2TLB-MPKI",
        "PTWs",
        "PTW-mean",
        "transl-share",
        "L2$-miss-lat",
    ]);
    let mut mpkis = Vec::new();
    let mut shares = Vec::new();
    let mut ptw_means = Vec::new();
    let timing = cfg.timing;
    for (name, s) in WORKLOAD_NAMES.iter().zip(&stats) {
        let share = s.translation_cycle_share(timing.t_expose, timing.d_expose);
        mpkis.push(s.l2_tlb_mpki());
        shares.push(share);
        if s.ptw_latency_mean > 0.0 {
            ptw_means.push(s.ptw_latency_mean);
        }
        t.row([
            name.to_string(),
            s.instructions.to_string(),
            s.mem_refs.to_string(),
            format!("{:.3}", s.ipc()),
            pct(s.l1_tlb_misses as f64 / (s.l1_tlb_hits + s.l1_tlb_misses).max(1) as f64),
            format!("{:.1}", s.l2_tlb_mpki()),
            s.ptws.to_string(),
            format!("{:.0}", s.ptw_latency_mean),
            pct(share),
            format!("{:.0}", s.l2_miss_latency()),
        ]);
    }
    let avg_mpki = mpkis.iter().sum::<f64>() / mpkis.len() as f64;
    t.note(format!(
        "avg L2 TLB MPKI = {:.1} (paper ≈ 39); mean PTW latency = {:.0} (paper ≈ 137); avg translation share = {} (paper ≈ 30%); GM IPC = {:.3}",
        avg_mpki,
        ptw_means.iter().sum::<f64>() / ptw_means.len().max(1) as f64,
        pct(shares.iter().sum::<f64>() / shares.len() as f64),
        geomean(&stats.iter().map(|s| s.ipc()).collect::<Vec<_>>()),
    ));
    vec![t]
}
