//! One module per reproduced table/figure. `all()` runs everything in
//! paper order; `by_id()` dispatches a single experiment.

pub mod calibrate;
pub mod fig04_ptw_latency;
pub mod fig05_07_tlb_sweep;
pub mod fig08_l3_tlb;
pub mod fig09_10_miss_latency;
pub mod fig11_reuse;
pub mod fig12_13_multicore;
pub mod fig20_24_native;
pub mod fig25_26_sensitivity;
pub mod fig27_29_virt;
pub mod sampled_small;
pub mod table2_predictor;

use crate::{ExpCtx, ExperimentReport};

/// All experiment ids in paper order (sec10 is the Related-Work claim
/// that a DUCATI-style full-memory STLB adds only ~0.8% over Victima).
pub const ALL_IDS: [&str; 24] = [
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table2",
    "fig16",
    "fig20",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "fig25",
    "fig26",
    "fig27",
    "fig28",
    "fig29",
    "sec10",
    "sampled_small",
];

/// Every id the `--check` regression gate covers: the calibration probe
/// plus the paper figures/tables, in run order.
pub fn checked_ids() -> Vec<&'static str> {
    std::iter::once("calibrate").chain(ALL_IDS).collect()
}

/// Runs one experiment by id. Returns `None` for unknown ids.
pub fn by_id(ctx: &ExpCtx, id: &str) -> Option<Vec<ExperimentReport>> {
    Some(match id {
        "calibrate" => calibrate::run(ctx),
        "fig04" => fig04_ptw_latency::run(ctx),
        "fig05" => fig05_07_tlb_sweep::fig05(ctx),
        "fig06" => fig05_07_tlb_sweep::fig06(ctx),
        "fig07" => fig05_07_tlb_sweep::fig07(ctx),
        "fig08" => fig08_l3_tlb::run(ctx),
        "fig09" => fig09_10_miss_latency::fig09(ctx),
        "fig10" => fig09_10_miss_latency::fig10(ctx),
        "fig11" => fig11_reuse::run(ctx),
        "fig12" => fig12_13_multicore::fig12(ctx),
        "fig13" => fig12_13_multicore::fig13(ctx),
        // Convenience alias: both multi-core figures in one shot.
        "fig12_13" => {
            let mut out = fig12_13_multicore::fig12(ctx);
            out.extend(fig12_13_multicore::fig13(ctx));
            out
        }
        "table2" => table2_predictor::table2(ctx),
        "fig16" => table2_predictor::fig16(ctx),
        "fig20" => fig20_24_native::fig20(ctx),
        "fig21" => fig20_24_native::fig21(ctx),
        "fig22" => fig20_24_native::fig22(ctx),
        "fig23" => fig20_24_native::fig23(ctx),
        "fig24" => fig20_24_native::fig24(ctx),
        "sec10" => fig20_24_native::sec10_combo(ctx),
        "fig25" => fig25_26_sensitivity::fig25(ctx),
        "fig26" => fig25_26_sensitivity::fig26(ctx),
        "fig27" => fig27_29_virt::fig27(ctx),
        "fig28" => fig27_29_virt::fig28(ctx),
        "fig29" => fig27_29_virt::fig29(ctx),
        // Small-scale sampling experiments: the checked sampled baseline
        // and the (unchecked, wall-clock) speedup demonstration.
        "sampled_small" => sampled_small::run(ctx),
        "sampling_speedup" => sampled_small::speedup(ctx),
        _ => return None,
    })
}

/// Runs every experiment in paper order.
pub fn all(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    ALL_IDS.iter().flat_map(|id| by_id(ctx, id).expect("ALL_IDS entries are dispatchable")).collect()
}
