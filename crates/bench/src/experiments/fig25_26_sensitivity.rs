//! Fig. 25: Victima's PTW reduction across L2 cache sizes (1–8MB).
//! Fig. 26: the TLB-aware vs. TLB-agnostic SRRIP ablation.

use crate::{pct, x_factor, ExpCtx, Table};
use sim::SystemConfig;
use vm_types::geomean;
use workloads::registry::WORKLOAD_NAMES;

/// Fig. 25: reduction in PTWs vs. Radix at matching L2 sizes.
pub fn fig25(ctx: &ExpCtx) -> Vec<Table> {
    let sizes: [u64; 4] = [1 << 20, 2 << 20, 4 << 20, 8 << 20];
    let mut t = Table::new("fig25", "Victima's PTW reduction across L2 cache sizes").headers(
        std::iter::once("workload".to_string()).chain(sizes.iter().map(|s| format!("{}MB", s >> 20))),
    );
    // All (size × {Radix, Victima}) runs go out as one engine batch.
    let cfgs: Vec<SystemConfig> = sizes
        .iter()
        .flat_map(|&bytes| {
            [
                SystemConfig::radix().with_l2_cache_bytes(bytes),
                SystemConfig::victima().with_l2_cache_bytes(bytes),
            ]
        })
        .collect();
    let mut per_size: Vec<Vec<f64>> = Vec::new();
    let flat = ctx.suites(&cfgs);
    let results: Vec<_> = flat.chunks_exact(2).collect();
    for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for (si, pair) in results.iter().enumerate() {
            let red = pair[1][wi].ptw_reduction_vs(&pair[0][wi]);
            if per_size.len() <= si {
                per_size.push(Vec::new());
            }
            per_size[si].push(red);
            row.push(pct(red));
        }
        t.row(row);
    }
    let mut mean = vec!["AVG".to_string()];
    for reds in &per_size {
        mean.push(pct(reds.iter().sum::<f64>() / reds.len() as f64));
    }
    t.row(mean);
    t.note("paper: reduction grows with L2 size, reaching 63% at 8MB");
    vec![t]
}

/// Fig. 26: Victima with TLB-aware SRRIP vs. Victima with baseline SRRIP.
pub fn fig26(ctx: &ExpCtx) -> Vec<Table> {
    let agnostic = ctx.suite(&SystemConfig::victima_agnostic_srrip());
    let aware = ctx.suite(&SystemConfig::victima());
    let mut t = Table::new("fig26", "Victima: TLB-aware SRRIP speedup over TLB-agnostic SRRIP")
        .headers(["workload", "speedup"]);
    let mut sp = Vec::new();
    for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
        let s = aware[wi].speedup_over(&agnostic[wi]);
        sp.push(s);
        t.row([name.to_string(), x_factor(s)]);
    }
    t.row(["GMEAN".to_string(), x_factor(geomean(&sp))]);
    t.note("paper: the TLB-aware policy adds +1.8% on average");
    vec![t]
}
