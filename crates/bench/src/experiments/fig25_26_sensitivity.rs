//! Fig. 25: Victima's PTW reduction across L2 cache sizes (1–8MB).
//! Fig. 26: the TLB-aware vs. TLB-agnostic SRRIP ablation.

use crate::{workload_matrix, ExpCtx, ExperimentReport, Metric, Unit};
use sim::SystemConfig;
use vm_types::geomean;

/// Fig. 25: reduction in PTWs vs. Radix at matching L2 sizes.
pub fn fig25(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let sizes: [u64; 4] = [1 << 20, 2 << 20, 4 << 20, 8 << 20];
    // All (size × {Radix, Victima}) runs go out as one engine batch.
    let cfgs: Vec<SystemConfig> = sizes
        .iter()
        .flat_map(|&bytes| {
            [
                SystemConfig::radix().with_l2_cache_bytes(bytes),
                SystemConfig::victima().with_l2_cache_bytes(bytes),
            ]
        })
        .collect();
    let flat = ctx.suites(&cfgs);
    let columns: Vec<String> = sizes.iter().map(|s| format!("{}MB", s >> 20)).collect();
    let values: Vec<Vec<f64>> = flat
        .chunks_exact(2)
        .map(|pair| pair[1].iter().zip(&pair[0]).map(|(v, b)| v.ptw_reduction_vs(b)).collect())
        .collect();
    let mut r = workload_matrix(
        "fig25",
        "Victima's PTW reduction across L2 cache sizes",
        Unit::Percent,
        &columns,
        &values,
    )
    .with_provenance(ctx.provenance(&cfgs));
    for (col, series) in columns.iter().zip(&values) {
        let avg = series.iter().sum::<f64>() / series.len() as f64;
        r.push_metric(Metric::new(format!("avg_ptw_reduction/{col}"), avg, Unit::Percent));
    }
    r.note("paper: reduction grows with L2 size, reaching 63% at 8MB");
    vec![r]
}

/// Fig. 26: Victima with TLB-aware SRRIP vs. Victima with baseline SRRIP.
pub fn fig26(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let agnostic_cfg = SystemConfig::victima_agnostic_srrip();
    let aware_cfg = SystemConfig::victima();
    let agnostic = ctx.suite(&agnostic_cfg);
    let aware = ctx.suite(&aware_cfg);
    let values: Vec<Vec<f64>> = vec![aware.iter().zip(&agnostic).map(|(a, b)| a.speedup_over(b)).collect()];
    let columns = vec!["speedup".to_owned()];
    let mut r = workload_matrix(
        "fig26",
        "Victima: TLB-aware SRRIP speedup over TLB-agnostic SRRIP",
        Unit::Factor,
        &columns,
        &values,
    )
    .with_provenance(ctx.provenance([&agnostic_cfg, &aware_cfg]));
    r.push_metric(Metric::new("gmean_speedup", geomean(&values[0]), Unit::Factor));
    r.note("paper: the TLB-aware policy adds +1.8% on average");
    vec![r]
}
