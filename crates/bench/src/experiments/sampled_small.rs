//! Paper-scale sampling experiments: the Small-scale sampled baseline
//! (`sampled_small`, part of the `--check` gate) and the wall-clock
//! speedup demonstration (`sampling_speedup`, unchecked — it measures
//! time).
//!
//! `sampled_small` pins its own profile — Small scale, fixed budgets and
//! a fixed SMARTS `U:D:W` spec — independent of the ambient context, so
//! its committed baseline is reproducible from any driver invocation,
//! exactly like the Tiny `--check` profile. It reruns the paper's
//! headline comparison (Victima vs. the radix baseline) at 8× the Tiny
//! footprint with ~4% detailed execution, showing that sampling
//! preserves the mechanism ranking at a scale the full-detail check
//! profile never visits.

use crate::{Column, ExpCtx, ExperimentReport, Metric, Unit, Value};
use report::Provenance;
use sim::{RunSpec, SamplingConfig, SimStats, SystemConfig};
use vm_types::geomean;
use workloads::Scale;

/// Workloads swept by `sampled_small`: the two ends of the TLB-stress
/// spectrum (random pointer chasing and the XSBench lookup kernel).
const WORKLOADS: [&str; 2] = ["RND", "XS"];

/// Pinned profile: 20K warm-up, then 20 windows of 5K detailed
/// instructions separated by 245K fast-forwarded + 5K detail-warmed
/// instructions — a ~4.85M-instruction span at ~4% detail.
const WARMUP: u64 = 20_000;
const DETAILED_TOTAL: u64 = 100_000;
const SPEC: &str = "245000:5000:5000";

/// The stream span a sampled run covers (detailed + skipped + warmed):
/// 20 windows, 19 fast-forward/warm gaps.
const SPAN: u64 = DETAILED_TOTAL + 19 * 245_000 + 19 * 5_000;

fn sampling() -> SamplingConfig {
    SamplingConfig::parse(SPEC).expect("pinned spec parses")
}

fn provenance(configs: &[&SystemConfig]) -> Provenance {
    Provenance {
        scale: format!("{:?}", Scale::Small),
        warmup: WARMUP,
        instructions: DETAILED_TOTAL,
        seed: vm_types::DEFAULT_SEED,
        engine: sim::ENGINE_ID.to_owned(),
        configs: configs.iter().map(|c| c.name.clone()).collect(),
        workloads: WORKLOADS.iter().map(|&w| w.to_owned()).collect(),
    }
}

fn sampled_specs(cfgs: &[SystemConfig]) -> Vec<RunSpec> {
    cfgs.iter()
        .flat_map(|cfg| {
            WORKLOADS.iter().map(move |&w| {
                RunSpec::new(w, cfg.clone(), Scale::Small, WARMUP, DETAILED_TOTAL).with_sampling(sampling())
            })
        })
        .collect()
}

/// The Small-scale sampled Victima-vs-radix comparison (checked).
pub fn run(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let cfgs = [SystemConfig::radix(), SystemConfig::victima()];
    let results = ctx.engine().run_batch(sampled_specs(&cfgs));
    let (radix, victima) = results.split_at(WORKLOADS.len());

    let mut r =
        ExperimentReport::new("sampled_small", "Victima vs. radix at Small scale under SMARTS sampling")
            .with_columns([
                Column::new("Radix IPC", Unit::Ipc),
                Column::new("Victima IPC", Unit::Ipc),
                Column::new("speedup", Unit::Factor),
                Column::new("Radix ±CI95", Unit::Ipc),
                Column::new("Victima ±CI95", Unit::Ipc),
            ])
            .with_provenance(provenance(&[&cfgs[0], &cfgs[1]]));

    let mut speedups = Vec::new();
    for (i, &w) in WORKLOADS.iter().enumerate() {
        let (r0, r1) = (&radix[i].stats, &victima[i].stats);
        let speedup = r1.ipc() / r0.ipc();
        speedups.push(speedup);
        let ci = |s: &SimStats| s.sampling.as_ref().map_or(0.0, |m| m.ipc_ci95);
        r.push_row(
            w,
            [
                Value::from(r0.ipc()),
                Value::from(r1.ipc()),
                Value::from(speedup),
                Value::from(ci(r0)),
                Value::from(ci(r1)),
            ],
        );
    }
    r.push_metric(Metric::new("victima_speedup_gmean", geomean(&speedups), Unit::Factor));
    let meta = radix[0].stats.sampling.as_ref().expect("sampled run carries sampling meta");
    r.push_metric(Metric::new("sampling_periods", meta.periods as f64, Unit::Count));
    r.push_metric(Metric::new(
        "detail_fraction",
        (meta.measured_instructions + meta.warm_instructions) as f64
            / (meta.measured_instructions + meta.warm_instructions + meta.skipped_instructions) as f64,
        Unit::Percent,
    ));
    r.note(format!("SMARTS spec {SPEC} (fast:detailed:warm), {WARMUP} warm-up, ~{SPAN}-instruction span"));
    r.note("the paper's ranking (Victima ≥ radix on TLB-stressed workloads) must survive sampling");
    vec![r]
}

/// Wall-clock speedup of sampling vs. full detail over the same
/// Small-scale stream span (unchecked: it reports time).
pub fn speedup(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let cfgs = [SystemConfig::radix(), SystemConfig::victima()];
    let engine = ctx.engine();
    let sampled = engine.run_batch(sampled_specs(&cfgs));
    let full: Vec<RunSpec> = cfgs
        .iter()
        .flat_map(|cfg| {
            WORKLOADS.iter().map(move |&w| RunSpec::new(w, cfg.clone(), Scale::Small, WARMUP, SPAN))
        })
        .collect();
    let full = engine.run_batch(full);

    let mut r = ExperimentReport::new(
        "sampling_speedup",
        "Sampling wall-clock speedup vs. full detail (Small scale)",
    )
    .with_columns([
        Column::new("full s", Unit::Raw),
        Column::new("sampled s", Unit::Raw),
        Column::new("speedup", Unit::Factor),
        Column::new("full IPC", Unit::Ipc),
        Column::new("sampled IPC", Unit::Ipc),
        Column::new("IPC err", Unit::Percent),
    ])
    .with_provenance(provenance(&[&cfgs[0], &cfgs[1]]));
    let mut speedups = Vec::new();
    let mut errs = Vec::new();
    for (f, s) in full.iter().zip(&sampled) {
        let label = format!("{} {}", f.config_name, f.workload);
        let speedup = f.wall.as_secs_f64() / s.wall.as_secs_f64().max(1e-9);
        let err = (s.stats.ipc() - f.stats.ipc()).abs() / f.stats.ipc();
        speedups.push(speedup);
        errs.push(err);
        r.push_row(
            label,
            [
                Value::from(f.wall.as_secs_f64()),
                Value::from(s.wall.as_secs_f64()),
                Value::from(speedup),
                Value::from(f.stats.ipc()),
                Value::from(s.stats.ipc()),
                Value::from(err),
            ],
        );
    }
    r.push_metric(Metric::new("speedup_gmean", geomean(&speedups), Unit::Factor));
    r.push_metric(Metric::new("ipc_err_max", errs.iter().cloned().fold(0.0, f64::max), Unit::Percent));
    r.note(format!("both sides cover the same ~{SPAN}-instruction span; sampling runs {SPEC}"));
    r.note("wall-clock varies by machine — this artifact is informational, never a --check baseline");
    vec![r]
}
