//! Fig. 4: distribution of page-table-walk latency on the baseline
//! (mean ≈ 137 cycles, bucketed [20,190) with a small tail beyond).

use crate::{Column, ExpCtx, ExperimentReport, Metric, Unit, Value};
use sim::SystemConfig;
use vm_types::Histogram;

/// Runs the baseline suite and merges the PTW latency histograms.
pub fn run(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let cfg = SystemConfig::radix();
    let stats = ctx.suite(&cfg);
    let mut merged = Histogram::new(20, 10, 17);
    for s in &stats {
        merged.merge(&s.ptw_latency_hist);
    }
    let mut r = ExperimentReport::new("fig04", "Distribution of PTW latency (baseline, all workloads)")
        .with_label_name("bucket (cycles)")
        .with_columns([Column::new("walks", Unit::Count), Column::new("share", Unit::Percent)])
        .with_provenance(ctx.provenance([&cfg]));
    let total = merged.count().max(1);
    for (lo, hi, c) in merged.rows() {
        r.push_row(format!("{lo}-{hi}"), [Value::from(c), Value::from(c as f64 / total as f64)]);
    }
    r.push_metric(Metric::new("ptw_latency_mean", merged.mean(), Unit::Cycles));
    r.push_metric(Metric::new("ptw_latency_max", merged.max() as f64, Unit::Cycles).with_tolerance(0.1));
    r.push_metric(Metric::new("beyond_190_share", merged.overflow_fraction(), Unit::Percent));
    r.note("paper: mean = 137 cycles; share beyond 190 cycles = 0.2%");
    vec![r]
}
