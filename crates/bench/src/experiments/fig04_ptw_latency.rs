//! Fig. 4: distribution of page-table-walk latency on the baseline
//! (mean ≈ 137 cycles, bucketed [20,190) with a small tail beyond).

use crate::{pct, ExpCtx, Table};
use sim::SystemConfig;
use vm_types::Histogram;

/// Runs the baseline suite and merges the PTW latency histograms.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let stats = ctx.suite(&SystemConfig::radix());
    let mut merged = Histogram::new(20, 10, 17);
    for s in &stats {
        merged.merge(&s.ptw_latency_hist);
    }
    let mut t = Table::new("fig04", "Distribution of PTW latency (baseline, all workloads)").headers([
        "bucket (cycles)",
        "walks",
        "share",
    ]);
    let total = merged.count().max(1);
    for (lo, hi, c) in merged.rows() {
        t.row([format!("{lo}-{hi}"), c.to_string(), pct(c as f64 / total as f64)]);
    }
    t.note(format!(
        "mean = {:.1} cycles (paper: 137); max = {}; beyond-190 share = {} (paper: 0.2%)",
        merged.mean(),
        merged.max(),
        pct(merged.overflow_fraction()),
    ));
    vec![t]
}
