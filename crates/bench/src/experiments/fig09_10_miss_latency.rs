//! Fig. 9: L2 TLB miss latency with and without a software-managed TLB,
//! native and virtualised. Fig. 10: the idealised study serving every L2
//! TLB miss from L1/L2/LLC.

use crate::{pct, ExpCtx, Table};
use sim::SystemConfig;
use workloads::registry::WORKLOAD_NAMES;

/// Fig. 9: mean L2-TLB-miss latency across the four systems.
pub fn fig09(ctx: &ExpCtx) -> Vec<Table> {
    let systems = [
        ("Native", SystemConfig::radix()),
        ("Native+STLB", SystemConfig::pom_tlb()),
        ("Virtualized", SystemConfig::nested_paging()),
        ("Virtualized+STLB", SystemConfig::pom_tlb_virt()),
    ];
    let cfgs: Vec<SystemConfig> = systems.iter().map(|(_, c)| c.clone()).collect();
    let results = ctx.suites(&cfgs);
    let mut t = Table::new("fig09", "L2 TLB miss latency (cycles): native/virtualised, ±STLB")
        .headers(std::iter::once("workload").chain(systems.iter().map(|(n, _)| *n)));
    for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for r in &results {
            row.push(format!("{:.0}", r[wi].l2_miss_latency()));
        }
        t.row(row);
    }
    let mut mean = vec!["MEAN".to_string()];
    for r in &results {
        let avg = r.iter().map(|s| s.l2_miss_latency()).sum::<f64>() / r.len() as f64;
        mean.push(format!("{avg:.0}"));
    }
    t.row(mean);
    t.note("paper means: native 128, native+STLB 122, virtualized (NP) 275, virtualized+STLB 220");
    vec![t]
}

/// Fig. 10: reduction in L2 TLB miss latency when an oracle serves every
/// miss at L1 / L2 / LLC hit latency.
pub fn fig10(ctx: &ExpCtx) -> Vec<Table> {
    let base = ctx.suite(&SystemConfig::radix());
    let ideals = [
        ("TLB-Hit-L1", SystemConfig::ideal_backstop(4, "TLB-hit-L1")),
        ("TLB-Hit-L2", SystemConfig::ideal_backstop(16, "TLB-hit-L2")),
        ("TLB-Hit-LLC", SystemConfig::ideal_backstop(35, "TLB-hit-LLC")),
    ];
    let cfgs: Vec<SystemConfig> = ideals.iter().map(|(_, c)| c.clone()).collect();
    let results = ctx.suites(&cfgs);
    let mut t = Table::new("fig10", "Reduction in L2 TLB miss latency when L1/L2/LLC serve all misses")
        .headers(std::iter::once("workload").chain(ideals.iter().map(|(n, _)| *n)));
    let mut sums = vec![0.0; results.len()];
    for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for (ci, r) in results.iter().enumerate() {
            let red = 1.0 - r[wi].l2_miss_latency() / base[wi].l2_miss_latency().max(1e-9);
            sums[ci] += red;
            row.push(pct(red));
        }
        t.row(row);
    }
    let n = WORKLOAD_NAMES.len() as f64;
    t.row(std::iter::once("MEAN".to_string()).chain(sums.iter().map(|s| pct(s / n))).collect::<Vec<_>>());
    t.note("paper: even LLC-served misses cut L2 TLB miss latency by 71.9% on average");
    vec![t]
}
