//! Fig. 9: L2 TLB miss latency with and without a software-managed TLB,
//! native and virtualised. Fig. 10: the idealised study serving every L2
//! TLB miss from L1/L2/LLC.

use crate::{workload_matrix, ExpCtx, ExperimentReport, Metric, Unit};
use sim::SystemConfig;

/// Fig. 9: mean L2-TLB-miss latency across the four systems.
pub fn fig09(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let systems = [
        ("Native", SystemConfig::radix()),
        ("Native+STLB", SystemConfig::pom_tlb()),
        ("Virtualized", SystemConfig::nested_paging()),
        ("Virtualized+STLB", SystemConfig::pom_tlb_virt()),
    ];
    let cfgs: Vec<SystemConfig> = systems.iter().map(|(_, c)| c.clone()).collect();
    let results = ctx.suites(&cfgs);
    let columns: Vec<String> = systems.iter().map(|(n, _)| (*n).to_owned()).collect();
    let values: Vec<Vec<f64>> =
        results.iter().map(|r| r.iter().map(|s| s.l2_miss_latency()).collect()).collect();
    let mut r = workload_matrix(
        "fig09",
        "L2 TLB miss latency (cycles): native/virtualised, ±STLB",
        Unit::Cycles,
        &columns,
        &values,
    )
    .with_provenance(ctx.provenance(&cfgs));
    for (col, series) in columns.iter().zip(&values) {
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        r.push_metric(Metric::new(format!("mean_miss_latency/{col}"), mean, Unit::Cycles));
    }
    r.note("paper means: native 128, native+STLB 122, virtualized (NP) 275, virtualized+STLB 220");
    vec![r]
}

/// Fig. 10: reduction in L2 TLB miss latency when an oracle serves every
/// miss at L1 / L2 / LLC hit latency.
pub fn fig10(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let base_cfg = SystemConfig::radix();
    let base = ctx.suite(&base_cfg);
    let ideals = [
        ("TLB-Hit-L1", SystemConfig::ideal_backstop(4, "TLB-hit-L1")),
        ("TLB-Hit-L2", SystemConfig::ideal_backstop(16, "TLB-hit-L2")),
        ("TLB-Hit-LLC", SystemConfig::ideal_backstop(35, "TLB-hit-LLC")),
    ];
    let cfgs: Vec<SystemConfig> = ideals.iter().map(|(_, c)| c.clone()).collect();
    let results = ctx.suites(&cfgs);
    let columns: Vec<String> = ideals.iter().map(|(n, _)| (*n).to_owned()).collect();
    let values: Vec<Vec<f64>> = results
        .iter()
        .map(|r| {
            r.iter()
                .zip(&base)
                .map(|(s, b)| 1.0 - s.l2_miss_latency() / b.l2_miss_latency().max(1e-9))
                .collect()
        })
        .collect();
    let mut r = workload_matrix(
        "fig10",
        "Reduction in L2 TLB miss latency when L1/L2/LLC serve all misses",
        Unit::Percent,
        &columns,
        &values,
    )
    .with_provenance(ctx.provenance(std::iter::once(&base_cfg).chain(&cfgs)));
    for (col, series) in columns.iter().zip(&values) {
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        r.push_metric(Metric::new(format!("mean_latency_reduction/{col}"), mean, Unit::Percent));
    }
    r.note("paper: even LLC-served misses cut L2 TLB miss latency by 71.9% on average");
    vec![r]
}
