//! Table 2 and Fig. 16: the PTW-CP design study.
//!
//! A profiling pass over the baseline collects the per-page Table 1
//! features; pages in the top 30% by total PTW cycles are labelled
//! costly-to-translate. We then train the paper's three MLPs from scratch
//! and evaluate them — and the production 4-comparator model — on a held-
//! out split. Fig. 16 renders NN-2's decision over the full
//! (frequency, cost) grid against the comparator's bounding box.

use crate::{ExpCtx, Table};
use sim::{RunSpec, SystemConfig};
use victima::features::{FeatureTracker, Sample};
use victima::nn::{decision_grid, evaluate_comparator, train_and_evaluate, FeatureSet, TrainConfig};
use victima::predictor::Thresholds;
use workloads::registry::WORKLOAD_NAMES;

/// Collects the merged feature dataset from profiling runs (one engine
/// batch over the suite; tracking makes runs slower, so the budget is
/// capped).
fn collect_dataset(ctx: &ExpCtx) -> Vec<Sample> {
    let runner = ctx.runner();
    let instructions = runner.instructions.min(600_000);
    let warmup = runner.warmup.min(50_000);
    let specs: Vec<RunSpec> = WORKLOAD_NAMES
        .iter()
        .map(|&name| {
            RunSpec::new(name, SystemConfig::radix(), runner.scale, warmup, instructions).with_features()
        })
        .collect();
    let mut merged = FeatureTracker::new();
    for result in ctx.engine().run_batch(specs) {
        // The measured window's features are what we label.
        let tracker = result.features.expect("spec asked for feature collection");
        merged.merge(&tracker);
    }
    merged.dataset(0.3)
}

/// Table 2: model comparison.
pub fn table2(ctx: &ExpCtx) -> Vec<Table> {
    let dataset = collect_dataset(ctx);
    let (train, test) = victima::nn::split_samples(&dataset, 0.3, 0xda7a);
    let cfg = TrainConfig::default();
    let mut t = Table::new("table2", "PTW-CP model comparison").headers([
        "model",
        "features",
        "size (B)",
        "recall",
        "accuracy",
        "precision",
        "f1",
    ]);
    for (name, set) in [("NN-10", FeatureSet::All10), ("NN-5", FeatureSet::Top5), ("NN-2", FeatureSet::Two)] {
        let (mlp, m) = train_and_evaluate(set, &train, &test, &cfg);
        t.row([
            name.to_string(),
            set.len().to_string(),
            mlp.size_bytes().to_string(),
            format!("{:.2}%", m.recall() * 100.0),
            format!("{:.2}%", m.accuracy() * 100.0),
            format!("{:.2}%", m.precision() * 100.0),
            format!("{:.2}%", m.f1() * 100.0),
        ]);
    }
    let m = evaluate_comparator(&Thresholds::default(), &test);
    t.row([
        "Comparator".to_string(),
        "2".to_string(),
        "24".to_string(),
        format!("{:.2}%", m.recall() * 100.0),
        format!("{:.2}%", m.accuracy() * 100.0),
        format!("{:.2}%", m.precision() * 100.0),
        format!("{:.2}%", m.f1() * 100.0),
    ]);
    t.note(format!(
        "dataset: {} pages ({} train / {} test), 30% labelled costly",
        dataset.len(),
        train.len(),
        test.len()
    ));
    t.note("paper: NN-10 f1=90.4%, NN-5 f1=89.9%, NN-2 f1=80.7%, comparator f1=80.7% (24B)");
    vec![t]
}

/// Fig. 16: NN-2's decision pattern over the (frequency, cost) grid.
pub fn fig16(ctx: &ExpCtx) -> Vec<Table> {
    let dataset = collect_dataset(ctx);
    let (train, test) = victima::nn::split_samples(&dataset, 0.3, 0xda7a);
    let cfg = TrainConfig::default();
    let (nn2, _) = train_and_evaluate(FeatureSet::Two, &train, &test, &cfg);
    let grid = decision_grid(&nn2);
    let mut t = Table::new("fig16", "NN-2 decision grid (rows: PTW frequency 0–7; cols: PTW cost 0–15)")
        .headers(std::iter::once("freq\\cost".to_string()).chain((0..=15).map(|c| c.to_string())));
    let th = Thresholds::default();
    for freq in 0..=7u8 {
        let mut row = vec![freq.to_string()];
        for cost in 0..=15u8 {
            let nn = grid
                .iter()
                .find(|&&(f, c, _)| f == freq && c == cost)
                .map(|&(_, _, p)| p)
                .expect("full grid");
            let boxed = victima::PtwCostPredictor::classify(&th, freq, cost);
            // '#': both costly; 'n': NN-only; 'b': box-only; '.': neither.
            row.push(
                match (nn, boxed) {
                    (true, true) => "#",
                    (true, false) => "n",
                    (false, true) => "b",
                    (false, false) => ".",
                }
                .to_string(),
            );
        }
        t.row(row);
    }
    let agree = grid.iter().filter(|&&(f, c, p)| p == victima::PtwCostPredictor::classify(&th, f, c)).count();
    t.note(format!("NN-2 and the comparator bounding box agree on {}/{} grid points", agree, grid.len()));
    vec![t]
}
