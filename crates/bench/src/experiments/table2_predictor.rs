//! Table 2 and Fig. 16: the PTW-CP design study.
//!
//! A profiling pass over the baseline collects the per-page Table 1
//! features; pages in the top 30% by total PTW cycles are labelled
//! costly-to-translate. We then train the paper's three MLPs from scratch
//! and evaluate them — and the production 4-comparator model — on a held-
//! out split. Fig. 16 renders NN-2's decision over the full
//! (frequency, cost) grid against the comparator's bounding box.

use crate::{Column, ExpCtx, ExperimentReport, Metric, Unit, Value};
use sim::{RunSpec, SystemConfig};
use victima::features::{FeatureTracker, Sample};
use victima::nn::{decision_grid, evaluate_comparator, train_and_evaluate, FeatureSet, TrainConfig};
use victima::predictor::Thresholds;
use workloads::registry::WORKLOAD_NAMES;

/// Collects the merged feature dataset from profiling runs (one engine
/// batch over the suite; tracking makes runs slower, so the budget is
/// capped).
fn collect_dataset(ctx: &ExpCtx) -> Vec<Sample> {
    let runner = ctx.runner();
    let instructions = runner.instructions.min(600_000);
    let warmup = runner.warmup.min(50_000);
    let specs: Vec<RunSpec> = WORKLOAD_NAMES
        .iter()
        .map(|&name| {
            RunSpec::new(name, SystemConfig::radix(), runner.scale, warmup, instructions).with_features()
        })
        .collect();
    let mut merged = FeatureTracker::new();
    for result in ctx.engine().run_batch(specs) {
        // The measured window's features are what we label.
        let tracker = result.features.expect("spec asked for feature collection");
        merged.merge(&tracker);
    }
    merged.dataset(0.3)
}

/// Table 2: model comparison.
pub fn table2(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let dataset = collect_dataset(ctx);
    let (train, test) = victima::nn::split_samples(&dataset, 0.3, 0xda7a);
    let cfg = TrainConfig::default();
    let radix = SystemConfig::radix();
    let mut t = ExperimentReport::new("table2", "PTW-CP model comparison")
        .with_label_name("model")
        .with_columns([
            Column::new("features", Unit::Count),
            Column::new("size (B)", Unit::Bytes),
            Column::new("recall", Unit::Percent).with_precision(2),
            Column::new("accuracy", Unit::Percent).with_precision(2),
            Column::new("precision", Unit::Percent).with_precision(2),
            Column::new("f1", Unit::Percent).with_precision(2),
        ])
        .with_provenance(ctx.provenance([&radix]));
    for (name, set) in [("NN-10", FeatureSet::All10), ("NN-5", FeatureSet::Top5), ("NN-2", FeatureSet::Two)] {
        let (mlp, m) = train_and_evaluate(set, &train, &test, &cfg);
        t.push_row(
            name,
            [
                Value::from(set.len() as u64),
                Value::from(mlp.size_bytes() as u64),
                Value::from(m.recall()),
                Value::from(m.accuracy()),
                Value::from(m.precision()),
                Value::from(m.f1()),
            ],
        );
        t.push_metric(Metric::new(format!("f1/{name}"), m.f1(), Unit::Percent).with_tolerance(0.05));
    }
    let m = evaluate_comparator(&Thresholds::default(), &test);
    t.push_row(
        "Comparator",
        [
            Value::from(2u64),
            Value::from(24u64),
            Value::from(m.recall()),
            Value::from(m.accuracy()),
            Value::from(m.precision()),
            Value::from(m.f1()),
        ],
    );
    t.push_metric(Metric::new("f1/Comparator", m.f1(), Unit::Percent).with_tolerance(0.05));
    t.push_metric(Metric::new("dataset_pages", dataset.len() as f64, Unit::Count).with_tolerance(0.0));
    t.note(format!(
        "dataset: {} pages ({} train / {} test), 30% labelled costly",
        dataset.len(),
        train.len(),
        test.len()
    ));
    t.note("paper: NN-10 f1=90.4%, NN-5 f1=89.9%, NN-2 f1=80.7%, comparator f1=80.7% (24B)");
    vec![t]
}

/// Fig. 16: NN-2's decision pattern over the (frequency, cost) grid.
pub fn fig16(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let dataset = collect_dataset(ctx);
    let (train, test) = victima::nn::split_samples(&dataset, 0.3, 0xda7a);
    let cfg = TrainConfig::default();
    let (nn2, _) = train_and_evaluate(FeatureSet::Two, &train, &test, &cfg);
    let grid = decision_grid(&nn2);
    let radix = SystemConfig::radix();
    let mut t =
        ExperimentReport::new("fig16", "NN-2 decision grid (rows: PTW frequency 0–7; cols: PTW cost 0–15)")
            .with_label_name("freq\\cost")
            .with_columns((0..=15).map(|c| Column::text(c.to_string())))
            .with_provenance(ctx.provenance([&radix]));
    let th = Thresholds::default();
    for freq in 0..=7u8 {
        let cells = (0..=15u8).map(|cost| {
            let nn = grid
                .iter()
                .find(|&&(f, c, _)| f == freq && c == cost)
                .map(|&(_, _, p)| p)
                .expect("full grid");
            let boxed = victima::PtwCostPredictor::classify(&th, freq, cost);
            // '#': both costly; 'n': NN-only; 'b': box-only; '.': neither.
            Value::from(match (nn, boxed) {
                (true, true) => "#",
                (true, false) => "n",
                (false, true) => "b",
                (false, false) => ".",
            })
        });
        t.push_row(freq.to_string(), cells);
    }
    let agree = grid.iter().filter(|&&(f, c, p)| p == victima::PtwCostPredictor::classify(&th, f, c)).count();
    t.push_metric(
        Metric::new("grid_agreement", agree as f64 / grid.len() as f64, Unit::Percent).with_tolerance(0.05),
    );
    t.note(format!("NN-2 and the comparator bounding box agree on {}/{} grid points", agree, grid.len()));
    vec![t]
}
