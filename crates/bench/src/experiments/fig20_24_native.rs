//! Figs. 20–24: the paper's main native-execution results. All five
//! figures read the same six system×workload runs (shared via the run
//! cache):
//!
//! - Fig. 20: speedup over Radix (POM-TLB, Opt. L3-64K, Opt. L2-64K,
//!   Opt. L2-128K, Victima).
//! - Fig. 21: reduction in PTWs.
//! - Fig. 22: L2 TLB miss latency (with POM / L2-cache / walk components)
//!   normalised to Radix.
//! - Fig. 23: translation reach of the TLB blocks in the L2 cache.
//! - Fig. 24: reuse distribution of TLB blocks.

use crate::{workload_matrix, Column, ExpCtx, ExperimentReport, Metric, Unit, Value};
use sim::{SimStats, SystemConfig};
use vm_types::{geomean, REUSE_BUCKET_LABELS};
use workloads::registry::WORKLOAD_NAMES;

fn systems() -> Vec<(&'static str, SystemConfig)> {
    vec![
        ("POM-TLB", SystemConfig::pom_tlb()),
        ("OptL3-64K", SystemConfig::with_l3_tlb(65536, 15)),
        ("OptL2-64K", SystemConfig::with_l2_tlb(65536, 12)),
        ("OptL2-128K", SystemConfig::with_l2_tlb(131072, 12)),
        ("Victima", SystemConfig::victima()),
    ]
}

fn run_all(ctx: &ExpCtx) -> (Vec<SimStats>, Vec<(&'static str, Vec<SimStats>)>) {
    let base = ctx.suite(&SystemConfig::radix());
    let sys = systems();
    let cfgs: Vec<SystemConfig> = sys.iter().map(|(_, c)| c.clone()).collect();
    let results = ctx.suites(&cfgs);
    (base, sys.iter().map(|(n, _)| *n).zip(results).collect())
}

fn native_provenance(ctx: &ExpCtx) -> report::Provenance {
    let base = SystemConfig::radix();
    let sys = systems();
    ctx.provenance(std::iter::once(&base).chain(sys.iter().map(|(_, c)| c)))
}

/// Fig. 20: execution-time speedup over Radix.
pub fn fig20(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let (base, results) = run_all(ctx);
    let columns: Vec<String> = results.iter().map(|(n, _)| (*n).to_owned()).collect();
    let values: Vec<Vec<f64>> =
        results.iter().map(|(_, r)| r.iter().zip(&base).map(|(s, b)| s.speedup_over(b)).collect()).collect();
    let mut r = workload_matrix("fig20", "Speedup over Radix (native)", Unit::Factor, &columns, &values)
        .with_provenance(native_provenance(ctx));
    for (col, series) in columns.iter().zip(&values) {
        r.push_metric(Metric::new(format!("gmean_speedup/{col}"), geomean(series), Unit::Factor));
    }
    r.note("paper GMEANs: POM +1.2%, OptL3-64K +2.9%, OptL2-64K +4.0%, OptL2-128K ≈ Victima, Victima +7.4%");
    vec![r]
}

/// Fig. 21: reduction in PTWs over Radix.
pub fn fig21(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let (base, results) = run_all(ctx);
    let keep = ["POM-TLB", "OptL2-64K", "OptL2-128K", "Victima"];
    let columns: Vec<String> = keep.iter().map(|&k| k.to_owned()).collect();
    let values: Vec<Vec<f64>> = keep
        .iter()
        .map(|k| {
            let r = &results.iter().find(|(n, _)| n == k).expect("system present").1;
            r.iter().zip(&base).map(|(s, b)| s.ptw_reduction_vs(b)).collect()
        })
        .collect();
    let mut r =
        workload_matrix("fig21", "Reduction in PTWs over Radix (native)", Unit::Percent, &columns, &values)
            .with_provenance(native_provenance(ctx));
    for (col, series) in columns.iter().zip(&values) {
        let avg = series.iter().sum::<f64>() / series.len() as f64;
        r.push_metric(Metric::new(format!("avg_ptw_reduction/{col}"), avg, Unit::Percent));
    }
    r.note("paper averages: Victima 50%, POM-TLB 37%, L2-64K 37%, L2-128K 48%");
    vec![r]
}

/// Fig. 22: mean L2 TLB miss latency, normalised to Radix, with the
/// POM / L2-cache / radix-walk breakdown.
pub fn fig22(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let (base, results) = run_all(ctx);
    let mut r = ExperimentReport::new(
        "fig22",
        "L2 TLB miss latency normalised to Radix (components: POM / L2$ / walk)",
    )
    .with_columns([
        Column::text("system"),
        Column::new("total", Unit::Percent),
        Column::new("POM", Unit::Percent),
        Column::new("L2$", Unit::Percent),
        Column::new("walk", Unit::Percent),
    ])
    .with_provenance(native_provenance(ctx));
    for k in ["POM-TLB", "Victima"] {
        let sys = &results.iter().find(|(n, _)| *n == k).expect("system present").1;
        let mut totals = Vec::new();
        for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
            let s = &sys[wi];
            let b = base[wi].l2_miss_latency().max(1e-9);
            let misses = s.l2_tlb_misses.max(1) as f64;
            let norm = |c: u64| c as f64 / misses / b;
            totals.push(s.l2_miss_latency() / b);
            r.push_row(
                *name,
                [
                    Value::from(k),
                    Value::from(s.l2_miss_latency() / b),
                    Value::from(norm(s.l2_miss_pom_component)),
                    Value::from(norm(s.l2_miss_cache_component)),
                    Value::from(norm(s.l2_miss_walk_component)),
                ],
            );
        }
        let avg = totals.iter().sum::<f64>() / totals.len() as f64;
        r.push_metric(Metric::new(format!("mean_norm_latency/{k}"), avg, Unit::Percent));
    }
    r.note("paper: Victima reduces L2 TLB miss latency by 22%, POM-TLB by 3%");
    vec![r]
}

/// Fig. 23: translation reach provided by TLB blocks in the L2 cache.
pub fn fig23(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let cfg = SystemConfig::victima();
    let victima = ctx.suite(&cfg);
    let mut r =
        ExperimentReport::new("fig23", "Translation reach of L2-cache TLB blocks (4KB-page equivalent)")
            .with_columns([
                Column::new("mean reach (MB)", Unit::Megabytes),
                Column::new("peak reach (MB)", Unit::Megabytes),
            ])
            .with_provenance(ctx.provenance([&cfg]));
    let mut means = Vec::new();
    for (name, s) in WORKLOAD_NAMES.iter().zip(&victima) {
        let mean_mb = s.reach_mean_bytes / (1 << 20) as f64;
        means.push(mean_mb);
        r.push_row(*name, [Value::from(mean_mb), Value::from(s.reach_max_bytes as f64 / (1 << 20) as f64)]);
    }
    let avg = means.iter().sum::<f64>() / means.len() as f64;
    r.push_metric(Metric::new("mean_reach_mb", avg, Unit::Megabytes));
    r.push_metric(Metric::new("reach_vs_l2_tlb", avg / 6.0, Unit::Factor).with_tolerance(0.05));
    r.note("paper: 220MB average ≈ 36x the baseline L2 TLB reach (6MB)");
    vec![r]
}

/// Sec. 10's combination study: Victima plus a DUCATI-style in-memory
/// STLB behind it. The paper reports the combination is only ~0.8% faster
/// than Victima alone — the L2-cache TLB blocks already capture almost
/// all the value.
pub fn sec10_combo(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let vic_cfg = SystemConfig::victima();
    let combo_cfg = SystemConfig::victima_plus_stlb();
    let vic = ctx.suite(&vic_cfg);
    let combo = ctx.suite(&combo_cfg);
    let mut r = ExperimentReport::new("sec10", "Victima + full-memory STLB vs. Victima alone")
        .with_columns([Column::new("speedup over Victima", Unit::Factor)])
        .with_provenance(ctx.provenance([&vic_cfg, &combo_cfg]));
    let mut sp = Vec::new();
    for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
        let s = combo[wi].speedup_over(&vic[wi]);
        sp.push(s);
        r.push_row(*name, [Value::from(s)]);
    }
    r.push_metric(Metric::new("gmean_speedup_combo", geomean(&sp), Unit::Factor));
    r.note("paper (Sec. 10): the DUCATI-style combination is only +0.8% over Victima alone");
    vec![r]
}

/// Fig. 24: reuse distribution of the TLB blocks Victima keeps in the L2.
pub fn fig24(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    let cfg = SystemConfig::victima();
    let victima = ctx.suite(&cfg);
    let mut r = ExperimentReport::new("fig24", "Reuse-level distribution of TLB blocks in the L2 cache")
        .with_columns(REUSE_BUCKET_LABELS.iter().map(|&l| Column::new(l, Unit::Percent)))
        .with_provenance(ctx.provenance([&cfg]));
    let mut merged = vm_types::ReuseHistogram::new();
    for (name, s) in WORKLOAD_NAMES.iter().zip(&victima) {
        merged.merge(&s.l2_tlb_block_reuse);
        r.push_row(*name, s.l2_tlb_block_reuse.fractions().iter().map(|&f| Value::from(f)));
    }
    let fr = merged.fractions();
    r.push_row("ALL", fr.iter().map(|&f| Value::from(f)));
    r.push_metric(Metric::new("share_reuse_gt20", fr[4], Unit::Percent));
    r.note("paper: 65% of TLB blocks see more than 20 hits");
    vec![r]
}
