//! Figs. 20–24: the paper's main native-execution results. All five
//! figures read the same six system×workload runs (shared via the run
//! cache):
//!
//! - Fig. 20: speedup over Radix (POM-TLB, Opt. L3-64K, Opt. L2-64K,
//!   Opt. L2-128K, Victima).
//! - Fig. 21: reduction in PTWs.
//! - Fig. 22: L2 TLB miss latency (with POM / L2-cache / walk components)
//!   normalised to Radix.
//! - Fig. 23: translation reach of the TLB blocks in the L2 cache.
//! - Fig. 24: reuse distribution of TLB blocks.

use crate::{pct, x_factor, ExpCtx, Table};
use sim::{SimStats, SystemConfig};
use vm_types::{geomean, REUSE_BUCKET_LABELS};
use workloads::registry::WORKLOAD_NAMES;

fn systems() -> Vec<(&'static str, SystemConfig)> {
    vec![
        ("POM-TLB", SystemConfig::pom_tlb()),
        ("OptL3-64K", SystemConfig::with_l3_tlb(65536, 15)),
        ("OptL2-64K", SystemConfig::with_l2_tlb(65536, 12)),
        ("OptL2-128K", SystemConfig::with_l2_tlb(131072, 12)),
        ("Victima", SystemConfig::victima()),
    ]
}

fn run_all(ctx: &ExpCtx) -> (Vec<SimStats>, Vec<(&'static str, Vec<SimStats>)>) {
    let base = ctx.suite(&SystemConfig::radix());
    let sys = systems();
    let cfgs: Vec<SystemConfig> = sys.iter().map(|(_, c)| c.clone()).collect();
    let results = ctx.suites(&cfgs);
    (base, sys.iter().map(|(n, _)| *n).zip(results).collect())
}

/// Fig. 20: execution-time speedup over Radix.
pub fn fig20(ctx: &ExpCtx) -> Vec<Table> {
    let (base, results) = run_all(ctx);
    let mut t = Table::new("fig20", "Speedup over Radix (native)")
        .headers(std::iter::once("workload").chain(results.iter().map(|(n, _)| *n)));
    for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for (_, r) in &results {
            row.push(x_factor(r[wi].speedup_over(&base[wi])));
        }
        t.row(row);
    }
    let mut gm = vec!["GMEAN".to_string()];
    for (_, r) in &results {
        let sp: Vec<f64> = r.iter().zip(&base).map(|(s, b)| s.speedup_over(b)).collect();
        gm.push(x_factor(geomean(&sp)));
    }
    t.row(gm);
    t.note("paper GMEANs: POM +1.2%, OptL3-64K +2.9%, OptL2-64K +4.0%, OptL2-128K ≈ Victima, Victima +7.4%");
    vec![t]
}

/// Fig. 21: reduction in PTWs over Radix.
pub fn fig21(ctx: &ExpCtx) -> Vec<Table> {
    let (base, results) = run_all(ctx);
    let keep = ["POM-TLB", "OptL2-64K", "OptL2-128K", "Victima"];
    let mut t = Table::new("fig21", "Reduction in PTWs over Radix (native)")
        .headers(std::iter::once("workload").chain(keep));
    for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for k in keep {
            let r = &results.iter().find(|(n, _)| *n == k).expect("system present").1;
            row.push(pct(r[wi].ptw_reduction_vs(&base[wi])));
        }
        t.row(row);
    }
    let mut mean = vec!["AVG".to_string()];
    for k in keep {
        let r = &results.iter().find(|(n, _)| *n == k).expect("system present").1;
        let avg = r.iter().zip(&base).map(|(s, b)| s.ptw_reduction_vs(b)).sum::<f64>() / base.len() as f64;
        mean.push(pct(avg));
    }
    t.row(mean);
    t.note("paper averages: Victima 50%, POM-TLB 37%, L2-64K 37%, L2-128K 48%");
    vec![t]
}

/// Fig. 22: mean L2 TLB miss latency, normalised to Radix, with the
/// POM / L2-cache / radix-walk breakdown.
pub fn fig22(ctx: &ExpCtx) -> Vec<Table> {
    let (base, results) = run_all(ctx);
    let mut t = Table::new("fig22", "L2 TLB miss latency normalised to Radix (components: POM / L2$ / walk)")
        .headers(["workload", "system", "total", "POM", "L2$", "walk"]);
    for k in ["POM-TLB", "Victima"] {
        let r = &results.iter().find(|(n, _)| *n == k).expect("system present").1;
        let mut totals = Vec::new();
        for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
            let s = &r[wi];
            let b = base[wi].l2_miss_latency().max(1e-9);
            let misses = s.l2_tlb_misses.max(1) as f64;
            let norm = |c: u64| pct(c as f64 / misses / b);
            totals.push(s.l2_miss_latency() / b);
            t.row([
                name.to_string(),
                k.to_string(),
                pct(s.l2_miss_latency() / b),
                norm(s.l2_miss_pom_component),
                norm(s.l2_miss_cache_component),
                norm(s.l2_miss_walk_component),
            ]);
        }
        let avg = totals.iter().sum::<f64>() / totals.len() as f64;
        t.row(["MEAN".to_string(), k.to_string(), pct(avg), String::new(), String::new(), String::new()]);
    }
    t.note("paper: Victima reduces L2 TLB miss latency by 22%, POM-TLB by 3%");
    vec![t]
}

/// Fig. 23: translation reach provided by TLB blocks in the L2 cache.
pub fn fig23(ctx: &ExpCtx) -> Vec<Table> {
    let victima = ctx.suite(&SystemConfig::victima());
    let mut t = Table::new("fig23", "Translation reach of L2-cache TLB blocks (4KB-page equivalent)")
        .headers(["workload", "mean reach (MB)", "peak reach (MB)"]);
    let mut means = Vec::new();
    for (name, s) in WORKLOAD_NAMES.iter().zip(&victima) {
        means.push(s.reach_mean_bytes / (1 << 20) as f64);
        t.row([
            name.to_string(),
            format!("{:.0}", s.reach_mean_bytes / (1 << 20) as f64),
            format!("{:.0}", s.reach_max_bytes as f64 / (1 << 20) as f64),
        ]);
    }
    let avg = means.iter().sum::<f64>() / means.len() as f64;
    t.row(["MEAN".to_string(), format!("{avg:.0}"), String::new()]);
    t.note(format!(
        "paper: 220MB average ≈ 36x the baseline L2 TLB reach (6MB); ours = {:.0}MB = {:.0}x",
        avg,
        avg / 6.0
    ));
    vec![t]
}

/// Sec. 10's combination study: Victima plus a DUCATI-style in-memory
/// STLB behind it. The paper reports the combination is only ~0.8% faster
/// than Victima alone — the L2-cache TLB blocks already capture almost
/// all the value.
pub fn sec10_combo(ctx: &ExpCtx) -> Vec<Table> {
    let vic = ctx.suite(&SystemConfig::victima());
    let combo = ctx.suite(&SystemConfig::victima_plus_stlb());
    let mut t = Table::new("sec10", "Victima + full-memory STLB vs. Victima alone")
        .headers(["workload", "speedup over Victima"]);
    let mut sp = Vec::new();
    for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
        let s = combo[wi].speedup_over(&vic[wi]);
        sp.push(s);
        t.row([name.to_string(), x_factor(s)]);
    }
    t.row(["GMEAN".to_string(), x_factor(geomean(&sp))]);
    t.note("paper (Sec. 10): the DUCATI-style combination is only +0.8% over Victima alone");
    vec![t]
}

/// Fig. 24: reuse distribution of the TLB blocks Victima keeps in the L2.
pub fn fig24(ctx: &ExpCtx) -> Vec<Table> {
    let victima = ctx.suite(&SystemConfig::victima());
    let mut t = Table::new("fig24", "Reuse-level distribution of TLB blocks in the L2 cache")
        .headers(std::iter::once("workload").chain(REUSE_BUCKET_LABELS));
    let mut merged = vm_types::ReuseHistogram::new();
    for (name, s) in WORKLOAD_NAMES.iter().zip(&victima) {
        merged.merge(&s.l2_tlb_block_reuse);
        let fr = s.l2_tlb_block_reuse.fractions();
        t.row(std::iter::once(name.to_string()).chain(fr.iter().map(|&f| pct(f))).collect::<Vec<_>>());
    }
    let fr = merged.fractions();
    t.row(std::iter::once("ALL".to_string()).chain(fr.iter().map(|&f| pct(f))).collect::<Vec<_>>());
    t.note(format!(">20-reuse share = {} (paper: 65% of TLB blocks see more than 20 hits)", pct(fr[4])));
    vec![t]
}
