//! Experiment harness: regenerates every table and figure of the Victima
//! paper's evaluation (see DESIGN.md for the per-experiment index).
//!
//! Experiments share simulation runs through a cache (e.g. Figs.
//! 20–24 all read the same six system×workload sweeps) and execute
//! uncached runs as one batch on the [`SimEngine`] worker pool
//! (`VICTIMA_JOBS` workers). Each experiment returns a typed
//! [`ExperimentReport`] (the `report` crate) that renders to text, JSON,
//! CSV or markdown and feeds the `--check` regression gate.

pub mod ckpt;
pub mod experiments;
pub mod perf;
pub mod profile;
pub mod service;
pub mod trace;

use obs::{merge_snapshots, MetricValue, SpanEvent};
use report::Provenance;
use sim::{ObsMode, RunSpec, Runner, SamplingConfig, SimEngine, SimStats, SystemConfig};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use workloads::{registry::WORKLOAD_NAMES, Scale};

pub use report::{Column, ExperimentReport, Metric, Unit, Value};

/// Observability captured across a context's runs: every phase span plus
/// the merged metric snapshot (counters summed, gauges high-watered,
/// histograms merged — `obs::merge_snapshots`).
#[derive(Default)]
struct ObsData {
    spans: Vec<SpanEvent>,
    metrics: Vec<(String, MetricValue)>,
}

/// Shared context for all experiments.
#[derive(Clone)]
pub struct ExpCtx {
    runner: Runner,
    engine: SimEngine,
    /// When set, suite runs execute under SMARTS-style interval sampling
    /// (the `--sampling` flag) instead of full detail.
    sampling: Option<SamplingConfig>,
    cache: Arc<Mutex<HashMap<(String, &'static str), SimStats>>>,
    /// When set (`with_obs`), every engine run collects spans + metrics
    /// here. Diagnostics only — `SimStats` and artifacts never read it.
    obs: Option<Arc<Mutex<ObsData>>>,
}

impl ExpCtx {
    /// Full-scale context (budgets from `VICTIMA_INSTR`/`VICTIMA_WARMUP`,
    /// workers from `VICTIMA_JOBS`).
    pub fn new() -> Self {
        Self::at_scale(Scale::Full)
    }

    /// Quick context for CI / `cargo bench` smoke runs.
    pub fn quick() -> Self {
        Self::quick_at(Scale::Full)
    }

    /// Context at an explicit workload scale (the `--scale` flag);
    /// budgets still come from `VICTIMA_INSTR`/`VICTIMA_WARMUP`.
    pub fn at_scale(scale: Scale) -> Self {
        Self::with_runner(Runner::new(scale))
    }

    /// [`ExpCtx::quick`] at an explicit workload scale.
    pub fn quick_at(scale: Scale) -> Self {
        Self::with_runner(Runner::with_budget(scale, 60_000, 600_000))
    }

    /// The pinned regression-check profile: Tiny scale, fixed budgets,
    /// *independent of every environment variable except* `VICTIMA_JOBS`
    /// (which cannot change results — the engine is schedule-
    /// deterministic). Committed baselines under `crates/bench/baselines/`
    /// are generated at exactly this profile; `--check` refuses baselines
    /// whose provenance differs.
    pub fn check() -> Self {
        Self::with_runner(Runner::with_budget(Scale::Tiny, 5_000, 50_000))
    }

    /// A context with an explicit runner and worker count (tests).
    pub fn custom(runner: Runner, jobs: usize) -> Self {
        Self {
            runner,
            engine: SimEngine::with_jobs(jobs),
            sampling: None,
            cache: Arc::new(Mutex::new(HashMap::new())),
            obs: None,
        }
    }

    /// Overrides the worker count (the `--jobs` flag): takes precedence
    /// over the ambient `VICTIMA_JOBS`, so scripted reproduction runs
    /// don't depend on environment state. Results are identical at any
    /// worker count; this only changes wall-clock.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        // Preserve the enablement `with_obs` (or the env) already chose.
        let obs = self.engine.obs();
        self.engine = SimEngine::with_jobs(jobs).with_obs(obs);
        self
    }

    /// Enables full observability (metrics + phase spans) on every run
    /// this context executes, collecting them for [`ExpCtx::obs_spans`] /
    /// [`ExpCtx::obs_metrics`] — the `experiments profile` path. Results
    /// (`SimStats`, artifacts, `--check` bytes) are unchanged.
    pub fn with_obs(mut self) -> Self {
        self.engine = self.engine.with_obs(ObsMode::Full);
        self.obs = Some(Arc::new(Mutex::new(ObsData::default())));
        self
    }

    /// Every phase span collected so far (empty without `with_obs`).
    pub fn obs_spans(&self) -> Vec<SpanEvent> {
        self.obs.as_ref().map_or_else(Vec::new, |o| o.lock().expect("obs collector poisoned").spans.clone())
    }

    /// The merged metric snapshot so far (empty without `with_obs`).
    pub fn obs_metrics(&self) -> Vec<(String, MetricValue)> {
        self.obs.as_ref().map_or_else(Vec::new, |o| o.lock().expect("obs collector poisoned").metrics.clone())
    }

    /// Runs every suite simulation under SMARTS-style interval sampling
    /// (the `--sampling U:D[:W]` flag). Statistics then estimate the
    /// full-detail run — use for scaled-up exploration, never for the
    /// pinned `--check` profile.
    pub fn with_sampling(mut self, sampling: SamplingConfig) -> Self {
        self.sampling = Some(sampling);
        self
    }

    fn with_runner(runner: Runner) -> Self {
        Self {
            runner,
            engine: SimEngine::new(),
            sampling: None,
            cache: Arc::new(Mutex::new(HashMap::new())),
            obs: None,
        }
    }

    /// The underlying runner (scale + budget defaults).
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// The underlying batch engine.
    pub fn engine(&self) -> &SimEngine {
        &self.engine
    }

    /// Artifact provenance for an experiment that swept `cfgs` (any
    /// iterable of config references — a `&Vec<SystemConfig>`, an
    /// `[&SystemConfig; N]` array, or a `once(..).chain(..)`). Worker
    /// count and wall-clock are deliberately absent: artifacts must be
    /// byte-identical across `VICTIMA_JOBS` settings.
    pub fn provenance<'a>(&self, cfgs: impl IntoIterator<Item = &'a SystemConfig>) -> Provenance {
        Provenance {
            scale: format!("{:?}", self.runner.scale),
            warmup: self.runner.warmup,
            instructions: self.runner.instructions,
            seed: vm_types::DEFAULT_SEED,
            engine: sim::ENGINE_ID.to_owned(),
            configs: cfgs.into_iter().map(|c| c.name.clone()).collect(),
            workloads: WORKLOAD_NAMES.iter().map(|&w| w.to_owned()).collect(),
        }
    }

    /// Runs `cfg` over the whole 11-workload suite (cached, parallel).
    /// Returns stats in figure order.
    pub fn suite(&self, cfg: &SystemConfig) -> Vec<SimStats> {
        self.suites(std::slice::from_ref(cfg)).remove(0)
    }

    /// Runs several configs over the suite as one batch on the worker
    /// pool, skipping runs the cache already holds.
    pub fn suites(&self, cfgs: &[SystemConfig]) -> Vec<Vec<SimStats>> {
        // Collect jobs not yet cached.
        let mut jobs: Vec<(SystemConfig, &'static str)> = Vec::new();
        {
            let cache = self.cache.lock().expect("run cache poisoned");
            for cfg in cfgs {
                for &w in WORKLOAD_NAMES.iter() {
                    if !cache.contains_key(&(cfg.name.clone(), w)) {
                        jobs.push((cfg.clone(), w));
                    }
                }
            }
        }
        self.run_jobs(jobs);
        let cache = self.cache.lock().expect("run cache poisoned");
        cfgs.iter()
            .map(|cfg| {
                WORKLOAD_NAMES
                    .iter()
                    .map(|&w| cache.get(&(cfg.name.clone(), w)).expect("job just ran").clone())
                    .collect()
            })
            .collect()
    }

    /// Runs one (config, workload) pair through the cache.
    pub fn one(&self, cfg: &SystemConfig, workload: &'static str) -> SimStats {
        if let Some(s) = self.cache.lock().expect("run cache poisoned").get(&(cfg.name.clone(), workload)) {
            return s.clone();
        }
        self.run_jobs(vec![(cfg.clone(), workload)]);
        self.cache
            .lock()
            .expect("run cache poisoned")
            .get(&(cfg.name.clone(), workload))
            .expect("job just ran")
            .clone()
    }

    /// Fans the uncached jobs out as one engine batch and fills the cache.
    fn run_jobs(&self, jobs: Vec<(SystemConfig, &'static str)>) {
        if jobs.is_empty() {
            return;
        }
        let specs: Vec<RunSpec> = jobs
            .iter()
            .map(|(cfg, w)| {
                let spec = self.runner.spec(w, cfg);
                match self.sampling {
                    Some(s) => spec.with_sampling(s),
                    None => spec,
                }
            })
            .collect();
        let results = self.engine.run_batch(specs);
        if let Some(col) = &self.obs {
            let mut data = col.lock().expect("obs collector poisoned");
            for r in &results {
                data.spans.extend(r.spans.iter().cloned());
                if let Some(m) = &r.metrics {
                    merge_snapshots(&mut data.metrics, m);
                }
            }
        }
        let mut cache = self.cache.lock().expect("run cache poisoned");
        for ((cfg, w), r) in jobs.into_iter().zip(results) {
            cache.insert((cfg.name, w), r.stats);
        }
    }
}

impl Default for ExpCtx {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds the common "one row per workload, one column per swept system"
/// report shape: `columns[i]` names series `i`, `values[i][wi]` is that
/// series' measurement for workload `wi` (figure order). Metrics and
/// notes are the caller's to add.
pub fn workload_matrix(
    id: &str,
    title: &str,
    unit: Unit,
    columns: &[String],
    values: &[Vec<f64>],
) -> ExperimentReport {
    assert_eq!(columns.len(), values.len(), "one column per series");
    let mut r =
        ExperimentReport::new(id, title).with_columns(columns.iter().map(|c| Column::new(c.clone(), unit)));
    for (wi, name) in WORKLOAD_NAMES.iter().enumerate() {
        r.push_row(*name, values.iter().map(|series| Value::from(series[wi])));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_deduplicates_runs() {
        let ctx = ExpCtx::custom(Runner::with_budget(Scale::Tiny, 2_000, 20_000), 2);
        let cfg = SystemConfig::radix();
        let a = ctx.one(&cfg, "RND");
        let b = ctx.one(&cfg, "RND");
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(ctx.cache.lock().unwrap().len(), 1);
    }

    #[test]
    fn suites_batch_through_the_engine() {
        let ctx = ExpCtx::custom(Runner::with_budget(Scale::Tiny, 500, 5_000), 2);
        let cfgs = [SystemConfig::radix(), SystemConfig::victima()];
        let results = ctx.suites(&cfgs);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.len() == WORKLOAD_NAMES.len()));
        assert_eq!(ctx.cache.lock().unwrap().len(), 2 * WORKLOAD_NAMES.len());
        // A second call is served entirely from the cache.
        let again = ctx.suites(&cfgs);
        assert_eq!(again[0][0], results[0][0]);
    }

    #[test]
    fn provenance_captures_profile_and_configs() {
        let ctx = ExpCtx::check();
        let cfg = SystemConfig::victima();
        let p = ctx.provenance([&cfg]);
        assert_eq!(p.scale, "Tiny");
        assert_eq!((p.warmup, p.instructions), (5_000, 50_000));
        assert_eq!(p.configs, vec!["Victima"]);
        assert_eq!(p.workloads.len(), WORKLOAD_NAMES.len());
        assert_eq!(p.engine, sim::ENGINE_ID);
    }

    #[test]
    fn workload_matrix_shapes_rows_by_workload() {
        let cols = vec!["A".to_owned(), "B".to_owned()];
        let vals = vec![vec![1.0; WORKLOAD_NAMES.len()], vec![2.0; WORKLOAD_NAMES.len()]];
        let r = workload_matrix("figX", "t", Unit::Factor, &cols, &vals);
        assert_eq!(r.rows.len(), WORKLOAD_NAMES.len());
        assert_eq!(r.columns.len(), 2);
        assert_eq!(r.rows[0].cells[1], Value::Float(2.0));
    }
}
