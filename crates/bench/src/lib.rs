//! Experiment harness: regenerates every table and figure of the Victima
//! paper's evaluation (see DESIGN.md for the per-experiment index).
//!
//! Experiments share simulation runs through a cache (e.g. Figs.
//! 20–24 all read the same six system×workload sweeps) and execute runs in
//! parallel across a small worker pool. Each experiment returns a
//! [`Table`] whose rows mirror the series the paper plots.

pub mod experiments;
pub mod table;

use parking_lot::Mutex;
use sim::{Runner, SimStats, SystemConfig};
use std::collections::HashMap;
use std::sync::Arc;
use workloads::{registry::WORKLOAD_NAMES, Scale};

pub use table::Table;

/// Shared context for all experiments.
#[derive(Clone)]
pub struct ExpCtx {
    runner: Runner,
    cache: Arc<Mutex<HashMap<(String, &'static str), SimStats>>>,
    threads: usize,
}

impl ExpCtx {
    /// Full-scale context (budgets from `VICTIMA_INSTR`/`VICTIMA_WARMUP`).
    pub fn new() -> Self {
        Self::with_runner(Runner::new(Scale::Full))
    }

    /// Quick context for CI / `cargo bench` smoke runs.
    pub fn quick() -> Self {
        Self::with_runner(Runner::with_budget(Scale::Full, 60_000, 600_000))
    }

    fn with_runner(runner: Runner) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
        Self { runner, cache: Arc::new(Mutex::new(HashMap::new())), threads }
    }

    /// The underlying runner.
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// Runs `cfg` over the whole 11-workload suite (cached, parallel).
    /// Returns stats in figure order.
    pub fn suite(&self, cfg: &SystemConfig) -> Vec<SimStats> {
        self.suites(std::slice::from_ref(cfg)).remove(0)
    }

    /// Runs several configs over the suite, sharing the worker pool.
    pub fn suites(&self, cfgs: &[SystemConfig]) -> Vec<Vec<SimStats>> {
        // Collect jobs not yet cached.
        let mut jobs: Vec<(SystemConfig, &'static str)> = Vec::new();
        {
            let cache = self.cache.lock();
            for cfg in cfgs {
                for &w in WORKLOAD_NAMES.iter() {
                    if !cache.contains_key(&(cfg.name.clone(), w)) {
                        jobs.push((cfg.clone(), w));
                    }
                }
            }
        }
        self.run_jobs(jobs);
        let cache = self.cache.lock();
        cfgs.iter()
            .map(|cfg| {
                WORKLOAD_NAMES
                    .iter()
                    .map(|&w| cache.get(&(cfg.name.clone(), w)).expect("job just ran").clone())
                    .collect()
            })
            .collect()
    }

    /// Runs one (config, workload) pair through the cache.
    pub fn one(&self, cfg: &SystemConfig, workload: &'static str) -> SimStats {
        if let Some(s) = self.cache.lock().get(&(cfg.name.clone(), workload)) {
            return s.clone();
        }
        self.run_jobs(vec![(cfg.clone(), workload)]);
        self.cache.lock().get(&(cfg.name.clone(), workload)).expect("job just ran").clone()
    }

    fn run_jobs(&self, jobs: Vec<(SystemConfig, &'static str)>) {
        if jobs.is_empty() {
            return;
        }
        let queue = Arc::new(Mutex::new(jobs));
        let n = self.threads.min(queue.lock().len()).max(1);
        crossbeam::thread::scope(|scope| {
            for _ in 0..n {
                let queue = Arc::clone(&queue);
                let cache = Arc::clone(&self.cache);
                let runner = self.runner.clone();
                scope.spawn(move |_| loop {
                    let job = queue.lock().pop();
                    let Some((cfg, w)) = job else {
                        break;
                    };
                    let stats = runner.run_default(w, &cfg);
                    cache.lock().insert((cfg.name.clone(), w), stats);
                });
            }
        })
        .expect("worker threads do not panic");
    }
}

impl Default for ExpCtx {
    fn default() -> Self {
        Self::new()
    }
}

/// Formats a ratio as the paper's percentage strings.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a speedup factor.
pub fn x_factor(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_deduplicates_runs() {
        let ctx = ExpCtx::with_runner(Runner::with_budget(Scale::Tiny, 2_000, 20_000));
        let cfg = SystemConfig::radix();
        let a = ctx.one(&cfg, "RND");
        let b = ctx.one(&cfg, "RND");
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(ctx.cache.lock().len(), 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.074), "7.4%");
        assert_eq!(x_factor(1.2345), "1.234");
    }
}
