//! Experiment harness: regenerates every table and figure of the Victima
//! paper's evaluation (see DESIGN.md for the per-experiment index).
//!
//! Experiments share simulation runs through a cache (e.g. Figs.
//! 20–24 all read the same six system×workload sweeps) and execute
//! uncached runs as one batch on the [`SimEngine`] worker pool
//! (`VICTIMA_JOBS` workers). Each experiment returns a [`Table`] whose
//! rows mirror the series the paper plots.

pub mod experiments;
pub mod table;

use sim::{RunSpec, Runner, SimEngine, SimStats, SystemConfig};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use workloads::{registry::WORKLOAD_NAMES, Scale};

pub use table::Table;

/// Shared context for all experiments.
#[derive(Clone)]
pub struct ExpCtx {
    runner: Runner,
    engine: SimEngine,
    cache: Arc<Mutex<HashMap<(String, &'static str), SimStats>>>,
}

impl ExpCtx {
    /// Full-scale context (budgets from `VICTIMA_INSTR`/`VICTIMA_WARMUP`,
    /// workers from `VICTIMA_JOBS`).
    pub fn new() -> Self {
        Self::with_runner(Runner::new(Scale::Full))
    }

    /// Quick context for CI / `cargo bench` smoke runs.
    pub fn quick() -> Self {
        Self::with_runner(Runner::with_budget(Scale::Full, 60_000, 600_000))
    }

    fn with_runner(runner: Runner) -> Self {
        Self { runner, engine: SimEngine::new(), cache: Arc::new(Mutex::new(HashMap::new())) }
    }

    /// The underlying runner (scale + budget defaults).
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// The underlying batch engine.
    pub fn engine(&self) -> &SimEngine {
        &self.engine
    }

    /// Runs `cfg` over the whole 11-workload suite (cached, parallel).
    /// Returns stats in figure order.
    pub fn suite(&self, cfg: &SystemConfig) -> Vec<SimStats> {
        self.suites(std::slice::from_ref(cfg)).remove(0)
    }

    /// Runs several configs over the suite as one batch on the worker
    /// pool, skipping runs the cache already holds.
    pub fn suites(&self, cfgs: &[SystemConfig]) -> Vec<Vec<SimStats>> {
        // Collect jobs not yet cached.
        let mut jobs: Vec<(SystemConfig, &'static str)> = Vec::new();
        {
            let cache = self.cache.lock().expect("run cache poisoned");
            for cfg in cfgs {
                for &w in WORKLOAD_NAMES.iter() {
                    if !cache.contains_key(&(cfg.name.clone(), w)) {
                        jobs.push((cfg.clone(), w));
                    }
                }
            }
        }
        self.run_jobs(jobs);
        let cache = self.cache.lock().expect("run cache poisoned");
        cfgs.iter()
            .map(|cfg| {
                WORKLOAD_NAMES
                    .iter()
                    .map(|&w| cache.get(&(cfg.name.clone(), w)).expect("job just ran").clone())
                    .collect()
            })
            .collect()
    }

    /// Runs one (config, workload) pair through the cache.
    pub fn one(&self, cfg: &SystemConfig, workload: &'static str) -> SimStats {
        if let Some(s) = self.cache.lock().expect("run cache poisoned").get(&(cfg.name.clone(), workload)) {
            return s.clone();
        }
        self.run_jobs(vec![(cfg.clone(), workload)]);
        self.cache
            .lock()
            .expect("run cache poisoned")
            .get(&(cfg.name.clone(), workload))
            .expect("job just ran")
            .clone()
    }

    /// Fans the uncached jobs out as one engine batch and fills the cache.
    fn run_jobs(&self, jobs: Vec<(SystemConfig, &'static str)>) {
        if jobs.is_empty() {
            return;
        }
        let specs: Vec<RunSpec> = jobs.iter().map(|(cfg, w)| self.runner.spec(w, cfg)).collect();
        let results = self.engine.run_batch(specs);
        let mut cache = self.cache.lock().expect("run cache poisoned");
        for ((cfg, w), r) in jobs.into_iter().zip(results) {
            cache.insert((cfg.name, w), r.stats);
        }
    }
}

impl Default for ExpCtx {
    fn default() -> Self {
        Self::new()
    }
}

/// Formats a ratio as the paper's percentage strings.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a speedup factor.
pub fn x_factor(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_deduplicates_runs() {
        let ctx = ExpCtx::with_runner(Runner::with_budget(Scale::Tiny, 2_000, 20_000));
        let cfg = SystemConfig::radix();
        let a = ctx.one(&cfg, "RND");
        let b = ctx.one(&cfg, "RND");
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(ctx.cache.lock().unwrap().len(), 1);
    }

    #[test]
    fn suites_batch_through_the_engine() {
        let ctx = ExpCtx::with_runner(Runner::with_budget(Scale::Tiny, 500, 5_000));
        let cfgs = [SystemConfig::radix(), SystemConfig::victima()];
        let results = ctx.suites(&cfgs);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.len() == WORKLOAD_NAMES.len()));
        assert_eq!(ctx.cache.lock().unwrap().len(), 2 * WORKLOAD_NAMES.len());
        // A second call is served entirely from the cache.
        let again = ctx.suites(&cfgs);
        assert_eq!(again[0][0], results[0][0]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.074), "7.4%");
        assert_eq!(x_factor(1.2345), "1.234");
    }
}
