//! `experiments profile`: run experiments with full observability and
//! aggregate the collected phase spans into one breakdown artifact.
//!
//! The artifact (`BENCH_obs.json` by default) is an ordinary
//! `victima-report/1` document — id [`OBS_ID`], one row per phase
//! (warm-up, detailed windows, fast-forward, checkpoint restore) with
//! span count, total time, mean span time and share of the profiled
//! wall-clock — so the existing renderers, parsers and CI artifact
//! plumbing all apply unchanged. Headline simulator metrics (walks,
//! TLB misses, PWC hits) ride along as report metrics.
//!
//! Wall-clock numbers are machine-dependent, so this artifact — like
//! `BENCH_throughput.json` — is *not* part of `experiments --check`;
//! nothing here can perturb result bytes (the determinism gate in
//! `crates/bench/tests/obs.rs` pins that).

use crate::{experiments, Column, ExpCtx, ExperimentReport, Metric, Unit, Value};
use obs::MetricValue;
use std::path::PathBuf;

/// Artifact id of the profile breakdown report.
pub const OBS_ID: &str = "bench_obs";

/// Where the artifact is written: `VICTIMA_OBS_OUT` or `BENCH_obs.json`
/// in the invoking directory (same convention as `perf::artifact_path`).
pub fn artifact_path() -> PathBuf {
    std::env::var_os("VICTIMA_OBS_OUT").map(PathBuf::from).unwrap_or_else(|| PathBuf::from("BENCH_obs.json"))
}

/// Simulator counters promoted to headline metrics on the profile
/// report (the full registry stays available programmatically via
/// [`ExpCtx::obs_metrics`]).
const HEADLINE: &[&str] = &[
    "sim.tlb.l1.miss",
    "sim.tlb.l2.miss",
    "sim.ptw.walks",
    "sim.pwc.hit",
    "sim.pwc.miss",
    "sim.victima.hit",
    "sim.cache.l3.miss",
];

/// Runs every experiment in `ids` on `ctx` (which must have been built
/// [`ExpCtx::with_obs`]) and aggregates the collected spans into the
/// breakdown report.
///
/// # Errors
///
/// Returns the unknown id when one does not resolve, or a diagnostic
/// when the context collected no spans (observability not enabled).
pub fn profile_report(ctx: &ExpCtx, ids: &[&str]) -> Result<ExperimentReport, String> {
    for id in ids {
        if experiments::by_id(ctx, id).is_none() {
            return Err(format!("unknown experiment: {id} (try --list)"));
        }
    }
    let spans = ctx.obs_spans();
    if spans.is_empty() {
        return Err("no spans collected — was the context built with_obs()?".to_owned());
    }
    let aggs = obs::aggregate(&spans);
    let wall_us: u64 = aggs.iter().map(|a| a.total_us).sum();
    let round = |v: f64, decimals: i32| (v * 10f64.powi(decimals)).round() / 10f64.powi(decimals);
    let mut r = ExperimentReport::new(OBS_ID, format!("Per-phase profile: {}", ids.join(", ")))
        .with_label_name("phase")
        .with_provenance(ctx.provenance(std::iter::empty::<&sim::SystemConfig>()))
        .with_columns([
            Column::new("spans", Unit::Count),
            Column::new("total_ms", Unit::Raw),
            Column::new("mean_us", Unit::Raw),
            Column::new("share", Unit::Percent).with_precision(1),
        ]);
    for a in &aggs {
        r.push_row(
            a.name,
            [
                Value::from(a.count),
                Value::from(round(a.total_us as f64 / 1_000.0, 2)),
                Value::from(round(a.total_us as f64 / a.count as f64, 1)),
                // `Unit::Percent` renders fractions (×100 at display time).
                Value::from(a.total_us as f64 / wall_us.max(1) as f64),
            ],
        );
    }
    r.push_metric(Metric::new("phases", aggs.len() as f64, Unit::Count));
    r.push_metric(Metric::new("spans_total", spans.len() as f64, Unit::Count));
    r.push_metric(Metric::new("profiled_ms", wall_us as f64 / 1_000.0, Unit::Raw));
    for (name, v) in ctx.obs_metrics() {
        if let (true, MetricValue::Counter(n)) = (HEADLINE.contains(&name.as_str()), &v) {
            r.push_metric(Metric::new(name, *n as f64, Unit::Count));
        }
    }
    r.note(
        "Span timings are monotonic-clock diagnostics: machine-dependent, outside the \
         determinism contract, never compared by --check.",
    );
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Runner;
    use workloads::Scale;

    fn tiny_obs_ctx() -> ExpCtx {
        ExpCtx::custom(Runner::with_budget(Scale::Tiny, 500, 5_000), 2).with_obs()
    }

    #[test]
    fn profile_report_breaks_wall_clock_into_phases() {
        let ctx = tiny_obs_ctx();
        let r = profile_report(&ctx, &["calibrate"]).expect("profile runs");
        assert_eq!(r.id, OBS_ID);
        assert!(!r.rows.is_empty(), "calibrate must produce phase rows");
        let labels: Vec<&str> = r.rows.iter().map(|row| row.label.as_str()).collect();
        assert!(labels.contains(&"warmup"), "{labels:?}");
        assert!(labels.contains(&"measured"), "{labels:?}");
        // Shares are fractions (Percent renders ×100) summing to ~1.
        let share: f64 = r
            .rows
            .iter()
            .map(|row| match row.cells[3] {
                Value::Float(f) => f,
                ref v => panic!("share must be a float, got {v:?}"),
            })
            .sum();
        assert!((share - 1.0).abs() < 0.005, "shares sum to {share}");
        assert!(r.metric("spans_total").is_some());
        assert!(r.metric("sim.ptw.walks").is_some(), "headline counters ride along");
    }

    #[test]
    fn profile_report_rejects_unknown_ids_and_blind_contexts() {
        let ctx = tiny_obs_ctx();
        assert!(profile_report(&ctx, &["warp-drive"]).unwrap_err().contains("unknown experiment"));
        let blind = ExpCtx::custom(Runner::with_budget(Scale::Tiny, 500, 5_000), 1);
        assert!(profile_report(&blind, &["calibrate"]).unwrap_err().contains("no spans"));
    }
}
