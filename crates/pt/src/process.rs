//! The OS layer: per-process address spaces and eager region mapping with
//! transparent-huge-page mixing.
//!
//! The paper extracts each workload's page-size profile from a real system
//! running THP (Sec. 8); we reproduce that with a per-region huge-page
//! fraction: each 2MB-aligned chunk of a region is mapped either as one
//! 2MB page (with probability `huge_fraction`) or as 512 4KB pages, using
//! scattered physical frames from the shared [`FrameAllocator`].

use crate::frame_alloc::FrameAllocator;
use crate::radix::RadixPageTable;
use vm_types::{Asid, PageSize, SplitMix64, VirtAddr};

const CHUNK: u64 = 2 << 20;
/// Guard gap between regions, so workload regions never share leaf PTE
/// blocks.
const GUARD: u64 = 64 << 20;

/// A virtually contiguous, eagerly mapped region.
#[derive(Clone, Copy, Debug)]
pub struct MappedRegion {
    /// First virtual address of the region.
    pub base: VirtAddr,
    /// Region length in bytes.
    pub bytes: u64,
    /// Fraction of 2MB chunks that were mapped with a huge page.
    pub huge_fraction: f64,
}

impl MappedRegion {
    /// Address `offset` bytes into the region.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `offset` is out of bounds.
    #[inline]
    pub fn at(&self, offset: u64) -> VirtAddr {
        debug_assert!(offset < self.bytes, "offset {offset} outside region of {} bytes", self.bytes);
        self.base.add(offset)
    }

    /// One-past-the-end address.
    pub fn end(&self) -> VirtAddr {
        self.base.add(self.bytes)
    }
}

/// A process address space: an ASID, a radix page table and a bump
/// allocator for region placement.
pub struct AddressSpace {
    asid: Asid,
    /// The process's page table.
    pub page_table: RadixPageTable,
    next_va: u64,
    rng: SplitMix64,
    regions: Vec<MappedRegion>,
}

impl std::fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AddressSpace")
            .field("asid", &self.asid)
            .field("regions", &self.regions.len())
            .field("page_table", &self.page_table)
            .finish()
    }
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new(asid: Asid, alloc: &mut FrameAllocator, seed: u64) -> Self {
        Self {
            asid,
            page_table: RadixPageTable::new(alloc),
            next_va: 0x2000_0000, // leave the low 512MB for "code"
            rng: SplitMix64::new(seed ^ 0xA5CE55),
            regions: Vec::new(),
        }
    }

    /// The address space identifier.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Regions mapped so far.
    pub fn regions(&self) -> &[MappedRegion] {
        &self.regions
    }

    /// Total mapped bytes across regions.
    pub fn footprint(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes).sum()
    }

    /// Maps a fresh region of `bytes` (rounded up to 2MB), mixing page
    /// sizes per `huge_fraction`, and returns it.
    pub fn map_region(&mut self, bytes: u64, huge_fraction: f64, alloc: &mut FrameAllocator) -> MappedRegion {
        let bytes = bytes.next_multiple_of(CHUNK);
        let base = VirtAddr::new(self.next_va);
        self.next_va += bytes + GUARD;
        let mut va = base;
        let chunks = bytes / CHUNK;
        for _ in 0..chunks {
            if self.rng.chance(huge_fraction) {
                let frame = alloc.alloc_2m();
                self.page_table.map(va, frame, PageSize::Size2M, alloc);
            } else {
                for i in 0..(CHUNK / 4096) {
                    let frame = alloc.alloc_4k();
                    self.page_table.map(va.add(i * 4096), frame, PageSize::Size4K, alloc);
                }
            }
            va = va.add(CHUNK);
        }
        let region = MappedRegion { base, bytes, huge_fraction };
        self.regions.push(region);
        region
    }

    /// Maps a small region entirely with 4KB pages (e.g. the code region).
    pub fn map_small_region(&mut self, bytes: u64, alloc: &mut FrameAllocator) -> MappedRegion {
        self.map_region(bytes, 0.0, alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> (FrameAllocator, AddressSpace) {
        let mut alloc = FrameAllocator::new(4 << 30, 21);
        let asp = AddressSpace::new(Asid::new(1), &mut alloc, 21);
        (alloc, asp)
    }

    #[test]
    fn region_is_fully_mapped() {
        let (mut alloc, mut asp) = space();
        let r = asp.map_region(8 << 20, 0.5, &mut alloc);
        for off in (0..r.bytes).step_by(4096) {
            assert!(asp.page_table.translate(r.at(off)).is_some(), "hole at offset {off}");
        }
    }

    #[test]
    fn huge_fraction_zero_uses_only_4k() {
        let (mut alloc, mut asp) = space();
        let r = asp.map_region(4 << 20, 0.0, &mut alloc);
        for off in (0..r.bytes).step_by(2 << 20) {
            let (_, size) = asp.page_table.translate(r.at(off)).unwrap();
            assert_eq!(size, PageSize::Size4K);
        }
    }

    #[test]
    fn huge_fraction_one_uses_only_2m() {
        let (mut alloc, mut asp) = space();
        let r = asp.map_region(4 << 20, 1.0, &mut alloc);
        for off in (0..r.bytes).step_by(2 << 20) {
            let (_, size) = asp.page_table.translate(r.at(off)).unwrap();
            assert_eq!(size, PageSize::Size2M);
        }
    }

    #[test]
    fn mixed_fraction_yields_both_sizes() {
        let (mut alloc, mut asp) = space();
        let r = asp.map_region(64 << 20, 0.4, &mut alloc);
        let mut sizes = std::collections::HashSet::new();
        for off in (0..r.bytes).step_by(2 << 20) {
            sizes.insert(asp.page_table.translate(r.at(off)).unwrap().1);
        }
        assert_eq!(sizes.len(), 2, "expected a mix of 4KB and 2MB pages");
    }

    #[test]
    fn regions_do_not_overlap() {
        let (mut alloc, mut asp) = space();
        let a = asp.map_region(4 << 20, 0.0, &mut alloc);
        let b = asp.map_region(4 << 20, 0.0, &mut alloc);
        assert!(b.base.raw() >= a.end().raw() + GUARD - 1);
        assert_eq!(asp.regions().len(), 2);
        assert_eq!(asp.footprint(), 8 << 20);
    }

    #[test]
    fn distinct_virtual_pages_get_distinct_frames() {
        let (mut alloc, mut asp) = space();
        let r = asp.map_region(2 << 20, 0.0, &mut alloc);
        let mut frames = std::collections::HashSet::new();
        for off in (0..r.bytes).step_by(4096) {
            let (pa, _) = asp.page_table.translate(r.at(off)).unwrap();
            assert!(frames.insert(pa.frame(PageSize::Size4K)));
        }
    }
}
