//! The four-level radix page table (x86-64 style, Fig. 1 of the paper).
//!
//! Every table occupies a simulated 4KB physical frame; traversal is O(1)
//! per level because non-leaf entries store the child's *table index*
//! internally while the table's physical frame (used to compute each PTE's
//! physical address for the cache model) is tracked per table. Leaf entries
//! are genuine [`Pte`]s carrying the output frame, the PS bit and Victima's
//! PTW frequency/cost counters.

use crate::frame_alloc::FrameAllocator;
use crate::pte::Pte;
use vm_types::{PageSize, PhysAddr, VirtAddr};

/// Entries per table (512 = 9 bits per level).
pub const TABLE_ENTRIES: usize = 512;
/// Bytes per PTE.
pub const PTE_BYTES: u64 = 8;

/// Number of levels (PML4, PDPT, PD, PT).
pub const LEVELS: u8 = 4;

#[derive(Clone)]
struct Table {
    frame: u64,
    entries: Box<[u64; TABLE_ENTRIES]>,
}

impl Table {
    fn new(frame: u64) -> Self {
        Self { frame, entries: Box::new([0u64; TABLE_ENTRIES]) }
    }
}

/// One level of a completed walk: where the PTE lives and what it said.
#[derive(Clone, Copy, Debug)]
pub struct WalkStep {
    /// Radix level (3 = PML4 … 0 = PT).
    pub level: u8,
    /// Physical address of the PTE that was read.
    pub pte_paddr: PhysAddr,
}

/// A completed page-table walk: up to four steps plus the leaf outcome.
#[derive(Clone, Copy, Debug)]
pub struct Walk {
    steps: [WalkStep; LEVELS as usize],
    len: u8,
    /// Output frame (4KB-frame number of the page base).
    pub frame: u64,
    /// Page size of the mapping found.
    pub page_size: PageSize,
    /// The leaf PTE value (carries the predictor counters).
    pub leaf_pte: Pte,
}

impl Walk {
    /// The per-level steps, root first. 4 steps for 4KB pages, 3 for 2MB.
    pub fn steps(&self) -> &[WalkStep] {
        &self.steps[..self.len as usize]
    }

    /// Physical address of the leaf PTE (the one Victima's transform needs:
    /// its 64B cache block holds 8 consecutive PTEs).
    pub fn leaf_pte_paddr(&self) -> PhysAddr {
        self.steps[self.len as usize - 1].pte_paddr
    }

    /// Full output physical address for `va`.
    pub fn output(&self, va: VirtAddr) -> PhysAddr {
        PhysAddr::from_frame(
            self.frame >> (self.page_size.shift() - 12),
            self.page_size,
            va.page_offset(self.page_size),
        )
    }
}

/// A per-address-space four-level radix page table.
pub struct RadixPageTable {
    tables: Vec<Table>,
    root: usize,
    mapped_pages: u64,
}

impl std::fmt::Debug for RadixPageTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RadixPageTable")
            .field("tables", &self.tables.len())
            .field("mapped_pages", &self.mapped_pages)
            .finish()
    }
}

// Internal encoding of non-leaf entries: present bit | child table index in
// the frame field. The walker never interprets these bits — it only uses
// per-step PTE physical addresses — so the encoding is private.
const NONLEAF_PRESENT: u64 = 1;
const NONLEAF_LEAFBIT: u64 = 1 << 1;

fn nonleaf(child: usize) -> u64 {
    NONLEAF_PRESENT | ((child as u64) << 12)
}

fn child_of(entry: u64) -> usize {
    (entry >> 12) as usize
}

fn is_present(entry: u64) -> bool {
    entry & NONLEAF_PRESENT != 0
}

fn is_leaf(entry: u64) -> bool {
    entry & NONLEAF_LEAFBIT != 0
}

fn encode_leaf(pte: Pte) -> u64 {
    // Leaf entries are stored shifted so the internal present/leaf bits
    // don't collide with the PTE's own bits.
    (pte.raw() << 2) | NONLEAF_PRESENT | NONLEAF_LEAFBIT
}

fn decode_leaf(entry: u64) -> Pte {
    Pte::from_raw(entry >> 2)
}

impl RadixPageTable {
    /// Creates an empty page table, allocating the root frame.
    pub fn new(alloc: &mut FrameAllocator) -> Self {
        let root_frame = alloc.alloc_4k();
        Self { tables: vec![Table::new(root_frame)], root: 0, mapped_pages: 0 }
    }

    /// Physical address of the root table (the CR3 value).
    pub fn root_paddr(&self) -> PhysAddr {
        PhysAddr::new(self.tables[self.root].frame * 4096)
    }

    /// Number of 4KB frames consumed by the tables themselves.
    pub fn table_frames(&self) -> u64 {
        self.tables.len() as u64
    }

    /// Number of leaf mappings installed.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Maps `va` → `frame` with the given page size.
    ///
    /// # Panics
    ///
    /// Panics if the mapping would overwrite an existing incompatible
    /// mapping (the OS layer never double-maps).
    pub fn map(&mut self, va: VirtAddr, frame: u64, size: PageSize, alloc: &mut FrameAllocator) {
        let leaf_level = size.leaf_level();
        let mut table = self.root;
        let mut level = LEVELS - 1;
        while level > leaf_level {
            let idx = va.radix_index(level);
            let entry = self.tables[table].entries[idx];
            let child = if is_present(entry) {
                assert!(!is_leaf(entry), "cannot map through an existing leaf at level {level}");
                child_of(entry)
            } else {
                let frame = alloc.alloc_4k();
                let child = self.tables.len();
                self.tables.push(Table::new(frame));
                self.tables[table].entries[idx] = nonleaf(child);
                child
            };
            table = child;
            level -= 1;
        }
        let idx = va.radix_index(leaf_level);
        let slot = &mut self.tables[table].entries[idx];
        assert!(!is_present(*slot), "double mapping at {va}");
        *slot = encode_leaf(Pte::leaf(frame, size));
        self.mapped_pages += 1;
    }

    /// Walks the table for `va`, recording the PTE physical address touched
    /// at each level. Returns `None` if the address is unmapped.
    pub fn walk(&self, va: VirtAddr) -> Option<Walk> {
        let mut steps = [WalkStep { level: 0, pte_paddr: PhysAddr::new(0) }; LEVELS as usize];
        let mut len = 0u8;
        let mut table = self.root;
        let mut level = LEVELS - 1;
        loop {
            let idx = va.radix_index(level);
            let pte_paddr = PhysAddr::new(self.tables[table].frame * 4096 + idx as u64 * PTE_BYTES);
            steps[len as usize] = WalkStep { level, pte_paddr };
            len += 1;
            let entry = self.tables[table].entries[idx];
            if !is_present(entry) {
                return None;
            }
            if is_leaf(entry) {
                let pte = decode_leaf(entry);
                return Some(Walk {
                    steps,
                    len,
                    frame: pte.frame(),
                    page_size: pte.page_size(),
                    leaf_pte: pte,
                });
            }
            if level == 0 {
                return None; // malformed: non-leaf at PT level
            }
            table = child_of(entry);
            level -= 1;
        }
    }

    /// Translates `va` without recording steps.
    pub fn translate(&self, va: VirtAddr) -> Option<(PhysAddr, PageSize)> {
        self.walk(va).map(|w| (w.output(va), w.page_size))
    }

    /// Applies `f` to the leaf PTE of `va` (used by the MMU to update the
    /// PTW frequency/cost counters after a walk). No-op if unmapped.
    pub fn update_leaf<F: FnOnce(&mut Pte)>(&mut self, va: VirtAddr, f: F) {
        let mut table = self.root;
        let mut level = LEVELS - 1;
        loop {
            let idx = va.radix_index(level);
            let entry = self.tables[table].entries[idx];
            if !is_present(entry) {
                return;
            }
            if is_leaf(entry) {
                let mut pte = decode_leaf(entry);
                f(&mut pte);
                self.tables[table].entries[idx] = encode_leaf(pte);
                return;
            }
            if level == 0 {
                return;
            }
            table = child_of(entry);
            level -= 1;
        }
    }

    /// Serialises the PTW-counter state as (global entry index, raw PTE)
    /// pairs, one per leaf whose frequency/cost counters are nonzero. The
    /// table topology and mappings are deterministic from workload
    /// construction, so a warm-state checkpoint only needs the counters
    /// that walks have bumped since.
    pub fn save_counters(&self, out: &mut Vec<u64>) {
        for (t, table) in self.tables.iter().enumerate() {
            for (i, &entry) in table.entries.iter().enumerate() {
                if is_present(entry) && is_leaf(entry) {
                    let pte = decode_leaf(entry);
                    if pte.ptw_freq() != 0 || pte.ptw_cost() != 0 {
                        out.push((t * TABLE_ENTRIES + i) as u64);
                        out.push(pte.raw());
                    }
                }
            }
        }
    }

    /// Restores counters captured by [`RadixPageTable::save_counters`]
    /// into an identically constructed page table, verifying along the way
    /// that every target is a leaf translating to the same frame — a
    /// mismatch means the checkpoint was taken against a different
    /// workload/seed construction.
    ///
    /// # Errors
    ///
    /// Returns a message on odd word counts, out-of-range indices,
    /// non-leaf targets, or translation mismatches.
    pub fn restore_counters(&mut self, words: &[u64]) -> Result<(), String> {
        if !words.len().is_multiple_of(2) {
            return Err("page table: counter section has an odd word count".into());
        }
        for pair in words.chunks_exact(2) {
            let (idx, raw) = (pair[0] as usize, pair[1]);
            let (t, i) = (idx / TABLE_ENTRIES, idx % TABLE_ENTRIES);
            let entry = self
                .tables
                .get(t)
                .map(|table| table.entries[i])
                .ok_or_else(|| format!("page table: counter index {idx} is out of range"))?;
            if !is_present(entry) || !is_leaf(entry) {
                return Err(format!("page table: counter index {idx} is not a mapped leaf"));
            }
            let (old, new) = (decode_leaf(entry), Pte::from_raw(raw));
            if old.frame() != new.frame() || old.page_size() != new.page_size() {
                return Err(format!(
                    "page table: counter index {idx} translates differently (checkpoint from another construction?)"
                ));
            }
            self.tables[t].entries[i] = encode_leaf(new);
        }
        Ok(())
    }

    /// Removes the mapping for `va` (TLB-shootdown scenarios). Returns the
    /// removed PTE if one existed.
    pub fn unmap(&mut self, va: VirtAddr) -> Option<Pte> {
        let mut table = self.root;
        let mut level = LEVELS - 1;
        loop {
            let idx = va.radix_index(level);
            let entry = self.tables[table].entries[idx];
            if !is_present(entry) {
                return None;
            }
            if is_leaf(entry) {
                self.tables[table].entries[idx] = 0;
                self.mapped_pages -= 1;
                return Some(decode_leaf(entry));
            }
            if level == 0 {
                return None;
            }
            table = child_of(entry);
            level -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (FrameAllocator, RadixPageTable) {
        let mut alloc = FrameAllocator::new(1 << 30, 11);
        let pt = RadixPageTable::new(&mut alloc);
        (alloc, pt)
    }

    #[test]
    fn map_and_walk_4k() {
        let (mut alloc, mut pt) = setup();
        let frame = alloc.alloc_4k();
        let va = VirtAddr::new(0x7f00_1234_5000);
        pt.map(va, frame, PageSize::Size4K, &mut alloc);
        let walk = pt.walk(va).expect("mapped");
        assert_eq!(walk.steps().len(), 4);
        assert_eq!(walk.frame, frame);
        assert_eq!(walk.page_size, PageSize::Size4K);
        // Levels descend 3,2,1,0.
        let levels: Vec<u8> = walk.steps().iter().map(|s| s.level).collect();
        assert_eq!(levels, vec![3, 2, 1, 0]);
    }

    #[test]
    fn map_and_walk_2m_has_three_steps() {
        let (mut alloc, mut pt) = setup();
        let frame = alloc.alloc_2m();
        let va = VirtAddr::new(0x40_0000 * 3);
        pt.map(va, frame, PageSize::Size2M, &mut alloc);
        let walk = pt.walk(va.add(0x12_3456)).expect("mapped");
        assert_eq!(walk.steps().len(), 3);
        assert_eq!(walk.page_size, PageSize::Size2M);
        let out = walk.output(va.add(0x12_3456));
        assert_eq!(out.raw(), frame * 4096 + 0x12_3456);
    }

    #[test]
    fn unmapped_returns_none() {
        let (_, pt) = setup();
        assert!(pt.walk(VirtAddr::new(0xdead_beef)).is_none());
        assert!(pt.translate(VirtAddr::new(0xdead_beef)).is_none());
    }

    #[test]
    fn pte_addresses_are_distinct_across_levels() {
        let (mut alloc, mut pt) = setup();
        let frame = alloc.alloc_4k();
        let va = VirtAddr::new(0x1000_0000);
        pt.map(va, frame, PageSize::Size4K, &mut alloc);
        let walk = pt.walk(va).unwrap();
        let mut addrs: Vec<u64> = walk.steps().iter().map(|s| s.pte_paddr.raw()).collect();
        addrs.dedup();
        assert_eq!(addrs.len(), 4);
    }

    #[test]
    fn contiguous_pages_share_leaf_block() {
        // 8 PTEs fit one 64B block: VPNs differing only in the low 3 bits
        // must land in the same leaf cache block — the cluster Victima
        // transforms (footnote 3 of the paper).
        let (mut alloc, mut pt) = setup();
        let base = VirtAddr::new(0x2000_0000); // 8-page aligned
        let mut blocks = std::collections::HashSet::new();
        for i in 0..8u64 {
            let frame = alloc.alloc_4k();
            let va = base.add(i * 4096);
            pt.map(va, frame, PageSize::Size4K, &mut alloc);
            let walk = pt.walk(va).unwrap();
            blocks.insert(walk.leaf_pte_paddr().block_align());
        }
        assert_eq!(blocks.len(), 1, "8 contiguous PTEs must share one cache block");
    }

    #[test]
    fn update_leaf_bumps_counters_visible_to_walks() {
        let (mut alloc, mut pt) = setup();
        let frame = alloc.alloc_4k();
        let va = VirtAddr::new(0x3000_0000);
        pt.map(va, frame, PageSize::Size4K, &mut alloc);
        pt.update_leaf(va, |pte| {
            pte.bump_ptw_freq();
            pte.bump_ptw_cost();
        });
        let walk = pt.walk(va).unwrap();
        assert_eq!(walk.leaf_pte.ptw_freq(), 1);
        assert_eq!(walk.leaf_pte.ptw_cost(), 1);
        assert_eq!(walk.frame, frame, "counter updates must not corrupt the frame");
    }

    #[test]
    fn counter_snapshot_round_trips_and_verifies() {
        let build = || {
            let mut alloc = FrameAllocator::new(1 << 30, 11);
            let mut pt = RadixPageTable::new(&mut alloc);
            for i in 0..100u64 {
                let frame = alloc.alloc_4k();
                pt.map(VirtAddr::new(0x1_0000_0000 + i * 4096), frame, PageSize::Size4K, &mut alloc);
            }
            pt
        };
        let mut pt = build();
        for i in (0..100u64).step_by(7) {
            pt.update_leaf(VirtAddr::new(0x1_0000_0000 + i * 4096), |p| {
                p.bump_ptw_freq();
                p.bump_ptw_cost();
            });
        }
        let mut words = Vec::new();
        pt.save_counters(&mut words);
        assert_eq!(words.len(), 2 * 15, "only bumped leaves are recorded");
        let mut fresh = build();
        fresh.restore_counters(&words).expect("identical construction");
        for i in 0..100u64 {
            let va = VirtAddr::new(0x1_0000_0000 + i * 4096);
            let (a, b) = (pt.walk(va).unwrap().leaf_pte, fresh.walk(va).unwrap().leaf_pte);
            assert_eq!(a.raw(), b.raw(), "leaf {i} diverged after restore");
        }
        // A differently seeded construction translates differently and is
        // rejected rather than silently corrupted.
        let mut alloc = FrameAllocator::new(1 << 30, 999);
        let mut other = RadixPageTable::new(&mut alloc);
        for i in 0..100u64 {
            let frame = alloc.alloc_4k();
            other.map(VirtAddr::new(0x1_0000_0000 + i * 4096), frame, PageSize::Size4K, &mut alloc);
        }
        assert!(other.restore_counters(&words).is_err());
        assert!(fresh.restore_counters(&words[..3]).is_err(), "odd word count rejected");
    }

    #[test]
    fn unmap_removes_mapping() {
        let (mut alloc, mut pt) = setup();
        let frame = alloc.alloc_4k();
        let va = VirtAddr::new(0x5000_0000);
        pt.map(va, frame, PageSize::Size4K, &mut alloc);
        assert_eq!(pt.mapped_pages(), 1);
        let removed = pt.unmap(va).expect("was mapped");
        assert_eq!(removed.frame(), frame);
        assert!(pt.walk(va).is_none());
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    #[should_panic(expected = "double mapping")]
    fn double_map_panics() {
        let (mut alloc, mut pt) = setup();
        let va = VirtAddr::new(0x6000_0000);
        let f = alloc.alloc_4k();
        pt.map(va, f, PageSize::Size4K, &mut alloc);
        let g = alloc.alloc_4k();
        pt.map(va, g, PageSize::Size4K, &mut alloc);
    }

    #[test]
    fn many_mappings_walk_back_correctly() {
        let (mut alloc, mut pt) = setup();
        let mut expected = Vec::new();
        for i in 0..1000u64 {
            let va = VirtAddr::new(0x1_0000_0000 + i * 4096);
            let frame = alloc.alloc_4k();
            pt.map(va, frame, PageSize::Size4K, &mut alloc);
            expected.push((va, frame));
        }
        for (va, frame) in expected {
            assert_eq!(pt.walk(va).unwrap().frame, frame);
        }
    }
}
