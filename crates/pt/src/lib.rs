//! Four-level radix page tables, physical frame allocation and the OS
//! mapping layer for the Victima (MICRO 2023) reproduction.
//!
//! Page tables here are *real* data structures: every table occupies a
//! simulated 4KB physical frame, and every PTE has a physical address, so
//! the hardware page-table walker in `tlb-sim` can issue genuine cache
//! hierarchy accesses for each level of the walk — which is what Victima's
//! block transformation (leaf PTE cluster → TLB block) depends on.
//!
//! PTEs embed the paper's two predictor counters in their ignored bits:
//! a 3-bit page-table-walk frequency counter and a 4-bit PTW cost counter
//! (Sec. 5.2, Fig. 15).
//!
//! # Examples
//!
//! ```
//! use page_table::{FrameAllocator, RadixPageTable};
//! use vm_types::{PageSize, PhysAddr, VirtAddr};
//!
//! let mut alloc = FrameAllocator::new(1 << 30, 42);
//! let mut pt = RadixPageTable::new(&mut alloc);
//! let frame = alloc.alloc_4k();
//! pt.map(VirtAddr::new(0x4000_0000), frame, PageSize::Size4K, &mut alloc);
//! let walk = pt.walk(VirtAddr::new(0x4000_0123)).expect("mapped");
//! assert_eq!(walk.steps().len(), 4); // PML4 → PDPT → PD → PT
//! assert_eq!(walk.output(VirtAddr::new(0x4000_0123)).page_offset(PageSize::Size4K), 0x123);
//! ```

pub mod frame_alloc;
pub mod nested;
pub mod process;
pub mod pte;
pub mod radix;

pub use frame_alloc::FrameAllocator;
pub use nested::{NestedMemory, ShadowPageTable};
pub use process::{AddressSpace, MappedRegion};
pub use pte::Pte;
pub use radix::{RadixPageTable, Walk, WalkStep, PTE_BYTES, TABLE_ENTRIES};
