//! Simulated physical-memory frame allocation.
//!
//! A bump allocator with pseudo-random skips: real long-running systems
//! hand out physically scattered frames (the fragmentation that makes
//! software-managed TLBs hard to allocate, Sec. 3.2), so consecutive
//! virtual pages should not be physically adjacent by default. 2MB
//! allocations are naturally aligned, and a contiguous-region allocator is
//! provided for structures like POM-TLB that demand tens of megabytes of
//! contiguous physical space.

use vm_types::{PageSize, PhysAddr, SplitMix64};

const FRAME_BYTES: u64 = 4096;
const FRAMES_PER_2M: u64 = 512;

/// Allocates simulated physical frames.
///
/// # Examples
///
/// ```
/// use page_table::FrameAllocator;
/// let mut a = FrameAllocator::new(64 << 20, 7);
/// let f1 = a.alloc_4k();
/// let f2 = a.alloc_4k();
/// assert_ne!(f1, f2);
/// ```
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    next_frame: u64,
    capacity_frames: u64,
    rng: SplitMix64,
    /// Fragmentation knob: maximum random skip (in frames) between
    /// consecutive 4KB allocations. 0 disables skipping.
    pub max_skip: u64,
    log: Vec<(u64, u32)>,
    logging: bool,
}

impl FrameAllocator {
    /// Creates an allocator managing `capacity_bytes` of physical memory.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than one 2MB region.
    pub fn new(capacity_bytes: u64, seed: u64) -> Self {
        assert!(capacity_bytes >= 2 << 20, "physical memory too small");
        Self {
            next_frame: 1, // keep frame 0 unused (null-ish)
            capacity_frames: capacity_bytes / FRAME_BYTES,
            rng: SplitMix64::new(seed),
            max_skip: 3,
            log: Vec::new(),
            logging: false,
        }
    }

    /// Frames handed out so far (upper bound; includes skipped holes).
    pub fn frames_used(&self) -> u64 {
        self.next_frame
    }

    /// Remaining capacity in frames.
    pub fn frames_left(&self) -> u64 {
        self.capacity_frames.saturating_sub(self.next_frame)
    }

    /// The skip RNG's internal state. Together with
    /// [`FrameAllocator::frames_used`] this fingerprints the allocator's
    /// exact position, letting a checkpoint verify that a rebuilt run
    /// reproduced the same allocation sequence.
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Enables allocation logging ([`FrameAllocator::drain_log`]); used by
    /// the nested-memory layer to host-map every guest-physical frame the
    /// guest page tables consume.
    pub fn set_logging(&mut self, on: bool) {
        self.logging = on;
    }

    /// Drains the (frame, count) allocation log.
    pub fn drain_log(&mut self) -> Vec<(u64, u32)> {
        std::mem::take(&mut self.log)
    }

    fn record(&mut self, frame: u64, count: u32) {
        if self.logging {
            self.log.push((frame, count));
        }
    }

    /// Allocates one 4KB frame.
    ///
    /// # Panics
    ///
    /// Panics on physical-memory exhaustion.
    pub fn alloc_4k(&mut self) -> u64 {
        if self.max_skip > 0 {
            self.next_frame += self.rng.next_below(self.max_skip + 1);
        }
        let frame = self.next_frame;
        self.next_frame += 1;
        assert!(frame < self.capacity_frames, "out of simulated physical memory");
        self.record(frame, 1);
        frame
    }

    /// Allocates one naturally aligned 2MB region; returns its first 4KB
    /// frame number.
    ///
    /// # Panics
    ///
    /// Panics on physical-memory exhaustion.
    pub fn alloc_2m(&mut self) -> u64 {
        let aligned = self.next_frame.next_multiple_of(FRAMES_PER_2M);
        self.next_frame = aligned + FRAMES_PER_2M;
        assert!(self.next_frame <= self.capacity_frames, "out of simulated physical memory");
        self.record(aligned, FRAMES_PER_2M as u32);
        aligned
    }

    /// Allocates a frame for a page of the given size.
    pub fn alloc(&mut self, size: PageSize) -> u64 {
        match size {
            PageSize::Size4K => self.alloc_4k(),
            PageSize::Size2M => self.alloc_2m(),
        }
    }

    /// Allocates `bytes` of physically contiguous memory, 2MB-aligned,
    /// returning its base address. POM-TLB uses this (Sec. 3.2's "10's of
    /// MB of contiguous physical address space").
    ///
    /// # Panics
    ///
    /// Panics on physical-memory exhaustion.
    pub fn alloc_contiguous(&mut self, bytes: u64) -> PhysAddr {
        let frames = bytes.div_ceil(FRAME_BYTES);
        let aligned = self.next_frame.next_multiple_of(FRAMES_PER_2M);
        self.next_frame = aligned + frames;
        assert!(self.next_frame <= self.capacity_frames, "out of simulated physical memory");
        self.record(aligned, frames as u32);
        PhysAddr::new(aligned * FRAME_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_distinct_and_nonzero() {
        let mut a = FrameAllocator::new(16 << 20, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let f = a.alloc_4k();
            assert!(f > 0);
            assert!(seen.insert(f), "frame handed out twice");
        }
    }

    #[test]
    fn two_mb_allocations_are_aligned() {
        let mut a = FrameAllocator::new(64 << 20, 2);
        a.alloc_4k();
        let f = a.alloc_2m();
        assert_eq!(f % FRAMES_PER_2M, 0);
        let g = a.alloc_2m();
        assert_eq!(g % FRAMES_PER_2M, 0);
        assert!(g >= f + FRAMES_PER_2M);
    }

    #[test]
    fn contiguous_region_is_aligned_and_sized() {
        let mut a = FrameAllocator::new(128 << 20, 3);
        let before = a.frames_used();
        let base = a.alloc_contiguous(10 << 20);
        assert_eq!(base.raw() % (2 << 20), 0);
        assert!(a.frames_used() - before >= (10 << 20) / 4096);
    }

    #[test]
    fn fragmentation_skips_spread_frames() {
        let mut a = FrameAllocator::new(64 << 20, 4);
        a.max_skip = 8;
        let frames: Vec<u64> = (0..64).map(|_| a.alloc_4k()).collect();
        let adjacent = frames.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(adjacent < 60, "skips should break most adjacency");
    }

    #[test]
    #[should_panic(expected = "out of simulated physical memory")]
    fn exhaustion_panics() {
        let mut a = FrameAllocator::new(2 << 20, 5);
        for _ in 0..10_000 {
            a.alloc_4k();
        }
    }

    #[test]
    fn logging_records_allocations() {
        let mut a = FrameAllocator::new(64 << 20, 6);
        a.set_logging(true);
        let f = a.alloc_4k();
        let g = a.alloc_2m();
        let log = a.drain_log();
        assert_eq!(log, vec![(f, 1), (g, 512)]);
        assert!(a.drain_log().is_empty());
    }
}
