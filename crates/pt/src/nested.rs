//! Virtualised-memory substrate: guest and host page tables for nested
//! paging (Sec. 2.3) plus the shadow page table used by the ideal shadow
//! paging baseline (I-SP, Sec. 8).
//!
//! Layout:
//! - the **guest page table** maps guest-virtual → guest-physical and its
//!   table frames live in guest-physical space (so every guest-walk access
//!   itself needs a host translation — the 2D walk);
//! - the **host page table** maps guest-physical → host-physical with its
//!   tables in host-physical space;
//! - the **shadow page table** maps guest-virtual → host-physical directly
//!   (kept in sync at map time; I-SP assumes updates are free).

use crate::frame_alloc::FrameAllocator;
use crate::process::{AddressSpace, MappedRegion};
use crate::radix::RadixPageTable;
use vm_types::{Asid, PageSize, PhysAddr, SplitMix64, VirtAddr};

/// A shadow page table: guest-virtual → host-physical.
pub struct ShadowPageTable {
    /// The underlying radix table (tables live in host-physical space).
    pub table: RadixPageTable,
}

impl std::fmt::Debug for ShadowPageTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowPageTable").field("table", &self.table).finish()
    }
}

/// The memory image of one guest VM running a single data-intensive
/// process, with all three page tables kept consistent.
pub struct NestedMemory {
    /// Guest-physical frame allocator.
    pub guest_alloc: FrameAllocator,
    /// Host-physical frame allocator.
    pub host_alloc: FrameAllocator,
    /// The guest process address space (gVA → gPA).
    pub guest: AddressSpace,
    /// Host page table (gPA → hPA). Guest-physical addresses are fed in as
    /// the "virtual" input of this radix table.
    pub host_pt: RadixPageTable,
    /// Shadow table (gVA → hPA) for the I-SP baseline.
    pub shadow: ShadowPageTable,
    host_huge_fraction: f64,
    rng: SplitMix64,
}

impl std::fmt::Debug for NestedMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NestedMemory").field("guest", &self.guest).field("host_pt", &self.host_pt).finish()
    }
}

impl NestedMemory {
    /// Creates a guest with `guest_phys_bytes` of guest-physical memory
    /// backed by `host_phys_bytes` of host-physical memory.
    ///
    /// `host_huge_fraction` is the probability that the host backs a 2MB
    /// guest-physical extent with a host huge page.
    pub fn new(
        asid: Asid,
        guest_phys_bytes: u64,
        host_phys_bytes: u64,
        host_huge_fraction: f64,
        seed: u64,
    ) -> Self {
        let mut guest_alloc = FrameAllocator::new(guest_phys_bytes, seed ^ 0x6e57);
        // A freshly booted guest sees an unfragmented "physical" space:
        // its allocator is dense, which is what lets the host back it at
        // 2MB granularity (EPT THP).
        guest_alloc.max_skip = 0;
        guest_alloc.set_logging(true);
        let mut host_alloc = FrameAllocator::new(host_phys_bytes, seed ^ 0x4057);
        let guest = AddressSpace::new(asid, &mut guest_alloc, seed);
        let host_pt = RadixPageTable::new(&mut host_alloc);
        let shadow = ShadowPageTable { table: RadixPageTable::new(&mut host_alloc) };
        let mut this = Self {
            guest_alloc,
            host_alloc,
            guest,
            host_pt,
            shadow,
            host_huge_fraction,
            rng: SplitMix64::new(seed ^ shadow_seed()),
        };
        // Host-map the guest root table frame allocated in `AddressSpace::new`.
        this.host_map_pending();
        this
    }

    /// Maps a region in the guest and backs every newly allocated
    /// guest-physical frame (data *and* guest page-table frames) in the
    /// host page table; also updates the shadow table.
    pub fn map_region(&mut self, bytes: u64, guest_huge_fraction: f64) -> MappedRegion {
        let region = self.guest.map_region(bytes, guest_huge_fraction, &mut self.guest_alloc);
        self.host_map_pending();
        self.shadow_map_region(&region);
        region
    }

    /// Maps a small 4KB-only guest region (code).
    pub fn map_small_region(&mut self, bytes: u64) -> MappedRegion {
        self.map_region(bytes, 0.0)
    }

    /// Backs all guest-physical frames allocated since the last call.
    ///
    /// Like a hypervisor using THP for VM backing, the host populates the
    /// guest-physical space in whole 2MB-aligned *chunks* on first touch:
    /// with probability `host_huge_fraction` a chunk gets one host 2MB
    /// page, otherwise 512 scattered host 4KB frames.
    fn host_map_pending(&mut self) {
        let log = self.guest_alloc.drain_log();
        for (frame, count) in log {
            let first_chunk = frame >> 9;
            let last_chunk = (frame + count as u64 - 1) >> 9;
            for chunk in first_chunk..=last_chunk {
                let gpa_base = gpa_as_va(chunk << 9);
                if self.host_pt.translate(gpa_base).is_some() {
                    continue; // chunk already backed
                }
                if self.rng.chance(self.host_huge_fraction) {
                    let hframe = self.host_alloc.alloc_2m();
                    self.host_pt.map(gpa_base, hframe, PageSize::Size2M, &mut self.host_alloc);
                } else {
                    for i in 0..512u64 {
                        let hframe = self.host_alloc.alloc_4k();
                        self.host_pt.map(
                            gpa_base.add(i * 4096),
                            hframe,
                            PageSize::Size4K,
                            &mut self.host_alloc,
                        );
                    }
                }
            }
        }
    }

    /// Builds shadow (gVA → hPA) entries for a freshly mapped region.
    /// Shadow granularity is 2MB only when both the guest page and the
    /// backing host extent are 2MB (page splintering otherwise).
    fn shadow_map_region(&mut self, region: &MappedRegion) {
        let mut off = 0;
        while off < region.bytes {
            let gva = region.at(off);
            let (gpa, gsize) = self.guest.page_table.translate(gva).expect("region must be guest-mapped");
            if gsize == PageSize::Size2M {
                let (hpa, hsize) = self.host_translate(gpa).expect("gpa must be host-mapped");
                if hsize == PageSize::Size2M && hpa.page_offset(PageSize::Size2M) == 0 {
                    self.shadow.table.map(
                        gva,
                        hpa.frame(PageSize::Size4K),
                        PageSize::Size2M,
                        &mut self.host_alloc,
                    );
                } else {
                    for i in 0..512u64 {
                        let (hpa, _) =
                            self.host_translate(gpa.add(i * 4096)).expect("gpa must be host-mapped");
                        self.shadow.table.map(
                            gva.add(i * 4096),
                            hpa.frame(PageSize::Size4K),
                            PageSize::Size4K,
                            &mut self.host_alloc,
                        );
                    }
                }
                off += 2 << 20;
            } else {
                let (hpa, _) = self.host_translate(gpa).expect("gpa must be host-mapped");
                self.shadow.table.map(
                    gva,
                    hpa.frame(PageSize::Size4K),
                    PageSize::Size4K,
                    &mut self.host_alloc,
                );
                off += 4096;
            }
        }
    }

    /// Host-translates a guest-physical address.
    pub fn host_translate(&self, gpa: PhysAddr) -> Option<(PhysAddr, PageSize)> {
        self.host_pt.translate(gpa_as_va_addr(gpa))
    }

    /// End-to-end translation gVA → hPA via guest + host tables (ground
    /// truth; must agree with the shadow table).
    pub fn full_translate(&self, gva: VirtAddr) -> Option<PhysAddr> {
        let (gpa, _) = self.guest.page_table.translate(gva)?;
        let (hpa, _) = self.host_translate(gpa)?;
        Some(hpa)
    }
}

/// Reinterprets a guest-physical frame number as the "virtual" input of the
/// host page table.
#[inline]
pub fn gpa_as_va(gframe: u64) -> VirtAddr {
    VirtAddr::new(gframe * 4096)
}

/// Reinterprets a guest-physical address as the host table's input.
#[inline]
pub fn gpa_as_va_addr(gpa: PhysAddr) -> VirtAddr {
    VirtAddr::new(gpa.raw())
}

// A tiny obfuscation-free helper so the seed expression above reads clearly.
#[inline]
const fn shadow_seed() -> u64 {
    0x5AD0_77AB
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nested() -> NestedMemory {
        NestedMemory::new(Asid::new(2), 1 << 30, 4 << 30, 0.3, 99)
    }

    #[test]
    fn guest_and_host_translations_compose() {
        let mut n = nested();
        let r = n.map_region(16 << 20, 0.3);
        for off in (0..r.bytes).step_by(4096) {
            let gva = r.at(off);
            assert!(n.full_translate(gva).is_some(), "untranslatable gva at {off}");
        }
    }

    #[test]
    fn shadow_agrees_with_two_level_translation() {
        let mut n = nested();
        let r = n.map_region(8 << 20, 0.5);
        for off in (0..r.bytes).step_by(4096) {
            let gva = r.at(off);
            let direct = n.full_translate(gva).unwrap();
            let (shadowed, _) = n.shadow.table.translate(gva).expect("shadow hole");
            assert_eq!(direct, shadowed, "shadow mismatch at offset {off}");
        }
    }

    #[test]
    fn guest_pt_frames_are_host_mapped() {
        let mut n = nested();
        let r = n.map_region(4 << 20, 0.0);
        // Every guest-walk step's PTE address (a gPA) must be host-mapped,
        // otherwise the 2D walker could not fetch guest PTEs.
        for off in (0..r.bytes).step_by(4096) {
            let walk = n.guest.page_table.walk(r.at(off)).unwrap();
            for step in walk.steps() {
                assert!(
                    n.host_translate(step.pte_paddr).is_some(),
                    "guest PTE at {:?} not host-mapped",
                    step.pte_paddr
                );
            }
        }
    }

    #[test]
    fn host_huge_pages_appear_when_requested() {
        let mut n = NestedMemory::new(Asid::new(3), 1 << 30, 4 << 30, 1.0, 7);
        let r = n.map_region(8 << 20, 1.0);
        let (gpa, gsize) = n.guest.page_table.translate(r.base).unwrap();
        assert_eq!(gsize, PageSize::Size2M);
        let (_, hsize) = n.host_translate(gpa).unwrap();
        assert_eq!(hsize, PageSize::Size2M);
        // Shadow should then also be 2MB.
        let (_, ssize) = n.shadow.table.translate(r.base).unwrap();
        assert_eq!(ssize, PageSize::Size2M);
    }
}
