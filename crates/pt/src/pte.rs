//! Page-table entry layout.
//!
//! Bits follow x86-64 where it matters to the simulator, plus the paper's
//! two predictor counters stowed in the ignored-bit range:
//!
//! ```text
//! bit  0        present
//! bit  7        PS (huge page, valid at the PD level)
//! bits 12..52   frame number (4KB-frame granularity)
//! bits 52..55   PTW frequency counter (3 bits, saturating)   — Victima
//! bits 55..59   PTW cost counter (4 bits, saturating)        — Victima
//! ```

use vm_types::PageSize;

const PRESENT_BIT: u64 = 1 << 0;
const HUGE_BIT: u64 = 1 << 7;
const FRAME_MASK: u64 = ((1u64 << 52) - 1) & !0xfff;
const FREQ_SHIFT: u64 = 52;
const FREQ_MASK: u64 = 0x7;
const COST_SHIFT: u64 = 55;
const COST_MASK: u64 = 0xf;

/// Maximum value of the 3-bit PTW frequency counter.
pub const PTW_FREQ_MAX: u8 = 7;
/// Maximum value of the 4-bit PTW cost counter.
pub const PTW_COST_MAX: u8 = 15;

/// A raw 64-bit page-table entry.
///
/// # Examples
///
/// ```
/// use page_table::Pte;
/// use vm_types::PageSize;
///
/// let mut pte = Pte::leaf(0x1234, PageSize::Size4K);
/// assert!(pte.present());
/// assert_eq!(pte.frame(), 0x1234);
/// pte.bump_ptw_freq();
/// assert_eq!(pte.ptw_freq(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Pte(u64);

impl Pte {
    /// The all-zero (not-present) entry.
    pub const EMPTY: Pte = Pte(0);

    /// Builds a leaf entry pointing at `frame` (4KB-frame number).
    pub const fn leaf(frame: u64, size: PageSize) -> Self {
        let huge = match size {
            PageSize::Size4K => 0,
            PageSize::Size2M => HUGE_BIT,
        };
        Pte(PRESENT_BIT | huge | ((frame << 12) & FRAME_MASK))
    }

    /// Builds a non-leaf entry pointing at the child table's frame.
    pub const fn table(frame: u64) -> Self {
        Pte(PRESENT_BIT | ((frame << 12) & FRAME_MASK))
    }

    /// Raw bits.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs from raw bits.
    pub const fn from_raw(raw: u64) -> Self {
        Pte(raw)
    }

    /// Present bit.
    pub const fn present(self) -> bool {
        self.0 & PRESENT_BIT != 0
    }

    /// Huge (PS) bit.
    pub const fn huge(self) -> bool {
        self.0 & HUGE_BIT != 0
    }

    /// Frame number (4KB-frame granularity; for 2MB leaves this is the
    /// first 4KB frame of the 2MB region).
    pub const fn frame(self) -> u64 {
        (self.0 & FRAME_MASK) >> 12
    }

    /// The paper's 3-bit PTW frequency counter.
    pub const fn ptw_freq(self) -> u8 {
        ((self.0 >> FREQ_SHIFT) & FREQ_MASK) as u8
    }

    /// The paper's 4-bit PTW cost counter.
    pub const fn ptw_cost(self) -> u8 {
        ((self.0 >> COST_SHIFT) & COST_MASK) as u8
    }

    /// Increments the frequency counter, saturating at 7. "If any of the
    /// two counters overflows, its value remains at the maximum value."
    pub fn bump_ptw_freq(&mut self) {
        let v = (self.ptw_freq() + 1).min(PTW_FREQ_MAX) as u64;
        self.0 = (self.0 & !(FREQ_MASK << FREQ_SHIFT)) | (v << FREQ_SHIFT);
    }

    /// Increments the cost counter, saturating at 15. Called when a PTW for
    /// this page touched DRAM at least once.
    pub fn bump_ptw_cost(&mut self) {
        let v = (self.ptw_cost() + 1).min(PTW_COST_MAX) as u64;
        self.0 = (self.0 & !(COST_MASK << COST_SHIFT)) | (v << COST_SHIFT);
    }

    /// Page size of a leaf entry.
    pub const fn page_size(self) -> PageSize {
        if self.huge() {
            PageSize::Size2M
        } else {
            PageSize::Size4K
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_round_trip() {
        let pte = Pte::leaf(0xabcd, PageSize::Size4K);
        assert!(pte.present());
        assert!(!pte.huge());
        assert_eq!(pte.frame(), 0xabcd);
        assert_eq!(pte.page_size(), PageSize::Size4K);
    }

    #[test]
    fn huge_leaf() {
        let pte = Pte::leaf(0x200, PageSize::Size2M);
        assert!(pte.huge());
        assert_eq!(pte.page_size(), PageSize::Size2M);
    }

    #[test]
    fn empty_not_present() {
        assert!(!Pte::EMPTY.present());
    }

    #[test]
    fn counters_saturate() {
        let mut pte = Pte::leaf(1, PageSize::Size4K);
        for _ in 0..20 {
            pte.bump_ptw_freq();
            pte.bump_ptw_cost();
        }
        assert_eq!(pte.ptw_freq(), PTW_FREQ_MAX);
        assert_eq!(pte.ptw_cost(), PTW_COST_MAX);
        // Counters must not corrupt the frame.
        assert_eq!(pte.frame(), 1);
        assert!(pte.present());
    }

    #[test]
    fn counters_do_not_alias() {
        let mut pte = Pte::leaf(0xfffff, PageSize::Size4K);
        pte.bump_ptw_freq();
        assert_eq!(pte.ptw_cost(), 0);
        pte.bump_ptw_cost();
        assert_eq!(pte.ptw_freq(), 1);
        assert_eq!(pte.ptw_cost(), 1);
    }

    #[test]
    fn raw_round_trip() {
        let pte = Pte::leaf(77, PageSize::Size2M);
        assert_eq!(Pte::from_raw(pte.raw()), pte);
    }
}
