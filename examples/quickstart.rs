//! Quickstart: run the GUPS random-access workload on the baseline and on
//! Victima — as one parallel batch — and print the headline numbers the
//! paper leads with.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use victima_repro::sim::{RunSpec, SimEngine, SystemConfig};
use victima_repro::workloads::Scale;

fn main() {
    // Paper-scale footprints; ~1M measured instructions keeps this quick.
    let (warmup, instructions) = (100_000, 1_000_000);
    let engine = SimEngine::new();
    println!("running Radix and Victima on RND as one batch ({} worker(s)) ...", engine.jobs());
    let results = engine.run_batch(vec![
        RunSpec::new("RND", SystemConfig::radix(), Scale::Full, warmup, instructions),
        RunSpec::new("RND", SystemConfig::victima(), Scale::Full, warmup, instructions),
    ]);
    let (baseline, victima) = (&results[0].stats, &results[1].stats);

    println!();
    println!("                      {:>12} {:>12}", "Radix", "Victima");
    println!("IPC                   {:>12.3} {:>12.3}", baseline.ipc(), victima.ipc());
    println!("L2 TLB MPKI           {:>12.1} {:>12.1}", baseline.l2_tlb_mpki(), victima.l2_tlb_mpki());
    println!("page-table walks      {:>12} {:>12}", baseline.ptws, victima.ptws);
    println!(
        "L2-miss latency (cyc) {:>12.0} {:>12.0}",
        baseline.l2_miss_latency(),
        victima.l2_miss_latency()
    );
    println!("TLB-block reach       {:>12} {:>9.0} MB", "-", victima.reach_mean_bytes / (1 << 20) as f64);
    println!();
    println!(
        "Victima speedup over Radix: {:.1}%  (PTW reduction {:.0}%, served {} misses from the L2 cache)",
        (victima.speedup_over(baseline) - 1.0) * 100.0,
        victima.ptw_reduction_vs(baseline) * 100.0,
        victima.victima_hits,
    );
    println!(
        "wall-clock: Radix {:.1}s, Victima {:.1}s",
        results[0].wall.as_secs_f64(),
        results[1].wall.as_secs_f64()
    );
}
