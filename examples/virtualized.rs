//! Virtualised execution: nested paging vs. ideal shadow paging vs.
//! Victima with nested TLB blocks (Secs. 5.4 and 9.3 of the paper).
//!
//! ```text
//! cargo run --release --example virtualized [WORKLOAD]
//! ```

use victima_repro::sim::{Runner, SystemConfig};
use victima_repro::workloads::{registry::WORKLOAD_NAMES, Scale};

fn main() {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "CC".to_owned());
    assert!(
        WORKLOAD_NAMES.contains(&workload.as_str()),
        "unknown workload {workload}; pick one of {WORKLOAD_NAMES:?}"
    );
    let runner = Runner::with_budget(Scale::Full, 100_000, 1_000_000);

    println!("workload: {workload} (guest VM, two-level translation)\n");
    let np = runner.run_default(&workload, &SystemConfig::nested_paging());
    let systems = vec![
        SystemConfig::nested_paging(),
        SystemConfig::pom_tlb_virt(),
        SystemConfig::ideal_shadow_paging(),
        SystemConfig::victima_virt(),
    ];
    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "system", "IPC", "guest PTWs", "host PTWs", "miss lat", "speedup"
    );
    for cfg in &systems {
        let s = runner.run_default(&workload, cfg);
        println!(
            "{:<16} {:>8.3} {:>12} {:>12} {:>12.0} {:>9.1}%",
            cfg.name,
            s.ipc(),
            s.ptws,
            s.host_ptws,
            s.l2_miss_latency(),
            (s.speedup_over(&np) - 1.0) * 100.0,
        );
    }
    println!("\nVictima eliminates most host walks by caching nested TLB blocks in the L2 cache");
    println!("(Figs. 18/19) and skips guest walks entirely on TLB-block hits. Across the full");
    println!("suite it beats even an idealised shadow-paging design that maintains its shadow");
    println!("table for free (Sec. 9.3) — though I-SP wins on a few individual workloads.");
}
