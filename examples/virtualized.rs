//! Virtualised execution: nested paging vs. ideal shadow paging vs.
//! Victima with nested TLB blocks (Secs. 5.4 and 9.3 of the paper). The
//! four systems run as one batch on the engine's worker pool.
//!
//! ```text
//! cargo run --release --example virtualized [WORKLOAD]
//! ```

use victima_repro::sim::{RunSpec, SimEngine, SystemConfig};
use victima_repro::workloads::{registry::WORKLOAD_NAMES, Scale};

fn main() {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "CC".to_owned());
    assert!(
        WORKLOAD_NAMES.contains(&workload.as_str()),
        "unknown workload {workload}; pick one of {WORKLOAD_NAMES:?}"
    );
    let (warmup, instructions) = (100_000, 1_000_000);

    println!("workload: {workload} (guest VM, two-level translation)\n");
    let systems = [
        SystemConfig::nested_paging(),
        SystemConfig::pom_tlb_virt(),
        SystemConfig::ideal_shadow_paging(),
        SystemConfig::victima_virt(),
    ];
    let specs: Vec<RunSpec> = systems
        .iter()
        .map(|cfg| RunSpec::new(workload.as_str(), cfg.clone(), Scale::Full, warmup, instructions))
        .collect();
    let results = SimEngine::new().run_batch(specs);
    let np = &results[0].stats;
    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "system", "IPC", "guest PTWs", "host PTWs", "miss lat", "speedup"
    );
    for r in &results {
        let s = &r.stats;
        println!(
            "{:<16} {:>8.3} {:>12} {:>12} {:>12.0} {:>9.1}%",
            r.config_name,
            s.ipc(),
            s.ptws,
            s.host_ptws,
            s.l2_miss_latency(),
            (s.speedup_over(np) - 1.0) * 100.0,
        );
    }
    println!("\nVictima eliminates most host walks by caching nested TLB blocks in the L2 cache");
    println!("(Figs. 18/19) and skips guest walks entirely on TLB-block hits. Across the full");
    println!("suite it beats even an idealised shadow-paging design that maintains its shadow");
    println!("table for free (Sec. 9.3) — though I-SP wins on a few individual workloads.");
}
