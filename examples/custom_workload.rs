//! Bring your own workload: implement the `Workload` trait and run any of
//! the paper's systems over it. Here: a pointer-chasing linked-list
//! traversal — a pattern the paper's suite doesn't include — showing how
//! serial dependent misses interact with Victima.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use victima_repro::sim::{System, SystemConfig};
use victima_repro::types::{mix2, MemRef, VirtAddr};
use victima_repro::workloads::{RegionSpec, Workload};

/// A pseudo-random pointer chase over a large node pool: node i's
/// successor is a hash of i. Every hop is a dependent load to a random
/// page — translation latency is fully exposed.
struct PointerChase {
    pool_bytes: u64,
    base: VirtAddr,
    node: u64,
    seed: u64,
}

impl PointerChase {
    fn new(pool_bytes: u64, seed: u64) -> Self {
        Self { pool_bytes, base: VirtAddr::new(0), node: 0, seed }
    }
}

const NODE_BYTES: u64 = 64;

impl Workload for PointerChase {
    fn name(&self) -> &'static str {
        "CHASE"
    }

    fn region_specs(&self) -> Vec<RegionSpec> {
        vec![RegionSpec { name: "node_pool", bytes: self.pool_bytes, huge_fraction: 0.25 }]
    }

    fn init(&mut self, bases: &[VirtAddr]) {
        assert_eq!(bases.len(), 1, "one region expected");
        self.base = bases[0];
    }

    fn fill(&mut self, out: &mut Vec<MemRef>) {
        let nodes = self.pool_bytes / NODE_BYTES;
        for _ in 0..64 {
            out.push(MemRef::load(self.base.add(self.node * NODE_BYTES), 0x40_0000, 4));
            self.node = mix2(self.seed, self.node) % nodes;
        }
    }
}

fn main() {
    let pool = 1u64 << 30; // 1GB of list nodes
    for cfg in [SystemConfig::radix(), SystemConfig::victima()] {
        let mut sys = System::new(cfg, Box::new(PointerChase::new(pool, 0xc0ffee)));
        sys.run_with_warmup(100_000, 1_000_000);
        sys.finalize_stats();
        let s = &sys.stats;
        println!(
            "{:<10} IPC {:.3}  L2TLB-MPKI {:>6.1}  PTWs {:>7}  mean walk {:>5.0} cyc  L2-miss lat {:>5.0} cyc",
            sys.config().name,
            s.ipc(),
            s.l2_tlb_mpki(),
            s.ptws,
            s.ptw_latency_mean,
            s.l2_miss_latency(),
        );
    }
    println!("\nPointer chasing misses the L2 TLB on nearly every hop; Victima turns most of");
    println!("those full radix walks into single L2 cache hits.");
}
