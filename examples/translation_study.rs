//! Translation-mechanism shoot-out on one workload: compares every native
//! design the paper evaluates (large L2 TLBs — optimistic and realistic —
//! an L3 TLB, POM-TLB, and Victima) on a workload of your choice. All six
//! systems run as one batch on the engine's worker pool, and the result
//! is a typed `report::ExperimentReport` — render it as text (default),
//! JSON, CSV or markdown with the second argument.
//!
//! ```text
//! cargo run --release --example translation_study [WORKLOAD] [text|json|csv|md]
//! ```
//!
//! `WORKLOAD` is one of the paper's abbreviations (default: XS).

use victima_repro::report::{Column, ExperimentReport, Metric, Provenance, Unit, Value};
use victima_repro::sim::{RunSpec, SimEngine, SystemConfig};
use victima_repro::workloads::{registry::WORKLOAD_NAMES, Scale};

fn main() {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "XS".to_owned());
    assert!(
        WORKLOAD_NAMES.contains(&workload.as_str()),
        "unknown workload {workload}; pick one of {WORKLOAD_NAMES:?}"
    );
    let format = std::env::args().nth(2).unwrap_or_else(|| "text".to_owned());
    let (warmup, instructions) = (100_000, 1_000_000);

    let systems = [
        SystemConfig::radix(),
        SystemConfig::with_l2_tlb(65536, 12), // optimistic big TLB
        SystemConfig::with_l2_tlb(65536, 39), // the same TLB at CACTI latency
        SystemConfig::with_l3_tlb(65536, 15), // hardware L3 TLB
        SystemConfig::pom_tlb(),              // software-managed in-memory TLB
        SystemConfig::victima(),
    ];
    // The whole sweep is one batch: the engine overlaps the six runs.
    let specs: Vec<RunSpec> = systems
        .iter()
        .map(|cfg| RunSpec::new(workload.as_str(), cfg.clone(), Scale::Full, warmup, instructions))
        .collect();
    let results = SimEngine::new().run_batch(specs);
    let baseline = &results[0].stats;

    // Shape the sweep as a typed report: one row per system, speedup as
    // a summary metric — the same schema the experiments binary emits.
    let mut r = ExperimentReport::new("study", format!("Translation mechanisms on {workload} (native)"))
        .with_label_name("system")
        .with_columns([
            Column::new("IPC", Unit::Ipc),
            Column::new("L2TLB MPKI", Unit::Mpki),
            Column::new("PTWs", Unit::Count),
            Column::new("speedup vs Radix", Unit::Factor),
        ])
        .with_provenance(Provenance {
            scale: format!("{:?}", Scale::Full),
            warmup,
            instructions,
            seed: victima_repro::types::DEFAULT_SEED,
            engine: victima_repro::sim::ENGINE_ID.to_owned(),
            configs: systems.iter().map(|c| c.name.clone()).collect(),
            workloads: vec![workload.clone()],
        });
    for res in &results {
        let s = &res.stats;
        r.push_row(
            res.config_name.clone(),
            [
                Value::from(s.ipc()),
                Value::from(s.l2_tlb_mpki()),
                Value::from(s.ptws),
                Value::from(s.speedup_over(baseline)),
            ],
        );
    }
    let victima = &results.last().expect("six systems ran").stats;
    r.push_metric(Metric::new("victima_speedup", victima.speedup_over(baseline), Unit::Factor));
    r.note("the realistic 64K TLB (39 cycles) gives back most of the optimistic gain,");
    r.note("while Victima reaches further without any added SRAM (Secs. 3.1 and 9.1 of the paper)");

    match format.as_str() {
        "text" => print!("{}", victima_repro::report::text::render(&r)),
        "json" => print!("{}", victima_repro::report::json::to_json(&r)),
        "csv" => print!("{}", victima_repro::report::csv::to_csv(&r)),
        "md" => print!("{}", victima_repro::report::markdown::render(&r)),
        other => {
            eprintln!("unknown format {other} (pick text, json, csv or md)");
            std::process::exit(2);
        }
    }
}
