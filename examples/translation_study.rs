//! Translation-mechanism shoot-out on one workload: compares every native
//! design the paper evaluates (large L2 TLBs — optimistic and realistic —
//! an L3 TLB, POM-TLB, and Victima) on a workload of your choice. All six
//! systems run as one batch on the engine's worker pool.
//!
//! ```text
//! cargo run --release --example translation_study [WORKLOAD]
//! ```
//!
//! `WORKLOAD` is one of the paper's abbreviations (default: XS).

use victima_repro::sim::{RunSpec, SimEngine, SystemConfig};
use victima_repro::workloads::{registry::WORKLOAD_NAMES, Scale};

fn main() {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "XS".to_owned());
    assert!(
        WORKLOAD_NAMES.contains(&workload.as_str()),
        "unknown workload {workload}; pick one of {WORKLOAD_NAMES:?}"
    );
    let (warmup, instructions) = (100_000, 1_000_000);

    let systems = [
        SystemConfig::radix(),
        SystemConfig::with_l2_tlb(65536, 12), // optimistic big TLB
        SystemConfig::with_l2_tlb(65536, 39), // the same TLB at CACTI latency
        SystemConfig::with_l3_tlb(65536, 15), // hardware L3 TLB
        SystemConfig::pom_tlb(),              // software-managed in-memory TLB
        SystemConfig::victima(),
    ];
    // The whole sweep is one batch: the engine overlaps the six runs.
    let specs: Vec<RunSpec> = systems
        .iter()
        .map(|cfg| RunSpec::new(workload.as_str(), cfg.clone(), Scale::Full, warmup, instructions))
        .collect();
    let results = SimEngine::new().run_batch(specs);

    println!("workload: {workload}\n");
    println!("{:<24} {:>8} {:>12} {:>10} {:>16}", "system", "IPC", "L2TLB MPKI", "PTWs", "speedup vs Radix");
    let baseline = &results[0].stats;
    for r in &results {
        let s = &r.stats;
        println!(
            "{:<24} {:>8.3} {:>12.1} {:>10} {:>15.1}%",
            r.config_name,
            s.ipc(),
            s.l2_tlb_mpki(),
            s.ptws,
            (s.speedup_over(baseline) - 1.0) * 100.0,
        );
    }
    println!("\nNote how the realistic 64K TLB (39 cycles) gives back most of the optimistic gain,");
    println!("while Victima reaches further without any added SRAM (Secs. 3.1 and 9.1 of the paper).");
}
