//! Integration tests for the paper's headline behaviours at test scale:
//! Victima's reach, its PTW reductions, the predictor's effect, and the
//! eviction flow.

use victima_repro::sim::{Runner, SystemConfig, TranslationMechanism};
use victima_repro::workloads::Scale;

fn runner() -> Runner {
    Runner::with_budget(Scale::Tiny, 20_000, 200_000)
}

#[test]
fn victima_extends_translation_reach() {
    let r = runner();
    let s = r.run("RND", &SystemConfig::victima(), r.warmup, r.instructions);
    // Baseline L2 TLB reach is 1536 x 4KB = 6MB; TLB blocks should extend
    // well beyond that even at Tiny scale.
    assert!(
        s.reach_mean_bytes > 6.0 * (1 << 20) as f64,
        "reach {:.1}MB should exceed the L2 TLB's 6MB",
        s.reach_mean_bytes / (1 << 20) as f64
    );
    assert!(s.reach_max_bytes > s.reach_mean_bytes as u64 / 2);
}

#[test]
fn victima_reduces_both_walks_and_miss_latency() {
    let r = runner();
    let base = r.run("RND", &SystemConfig::radix(), r.warmup, r.instructions);
    let vic = r.run("RND", &SystemConfig::victima(), r.warmup, r.instructions);
    assert!(vic.ptw_reduction_vs(&base) > 0.1, "PTW reduction {:.2}", vic.ptw_reduction_vs(&base));
    assert!(
        vic.l2_miss_latency() < base.l2_miss_latency(),
        "miss latency should drop: {:.0} vs {:.0}",
        vic.l2_miss_latency(),
        base.l2_miss_latency()
    );
    assert!(vic.speedup_over(&base) > 1.0);
}

#[test]
fn eviction_flow_issues_background_walks() {
    let r = runner();
    // At Tiny scale every TLB block fits in the 2MB L2, so the eviction
    // flow's presence check correctly suppresses all background walks;
    // shrink the cache so blocks actually get displaced.
    let cfg = SystemConfig::victima().with_l2_cache_bytes(256 << 10);
    let s = r.run("RND", &cfg, r.warmup, r.instructions);
    assert!(s.victima_background_walks > 0, "L2 TLB evictions should trigger background walks");
    assert!(s.victima_inserts > 0);
}

#[test]
fn disabling_insertion_flows_disables_the_benefit() {
    let r = runner();
    let mut off = SystemConfig::victima();
    if let TranslationMechanism::Victima(v) = &mut off.mechanism {
        v.insert_on_miss = false;
        v.insert_on_eviction = false;
    }
    off.name = "Victima-disabled".into();
    let s = r.run("RND", &off, r.warmup, r.instructions);
    assert_eq!(s.victima_hits, 0, "no inserts → no probe hits");
    let base = r.run("RND", &SystemConfig::radix(), r.warmup, r.instructions);
    // Without insertions Victima degenerates to the baseline (same walks).
    let reduction = s.ptw_reduction_vs(&base);
    assert!(reduction.abs() < 0.02, "expected ≈0 PTW reduction, got {reduction:.3}");
}

#[test]
fn tlb_aware_policy_keeps_more_blocks_than_agnostic() {
    let r = runner();
    let aware = r.run("RND", &SystemConfig::victima(), r.warmup, r.instructions);
    let agnostic = r.run("RND", &SystemConfig::victima_agnostic_srrip(), r.warmup, r.instructions);
    // Both work; the aware policy should hold at least as much reach.
    assert!(aware.reach_mean_bytes >= agnostic.reach_mean_bytes * 0.8);
    assert!(agnostic.victima_hits > 0);
}

#[test]
fn stlb_behind_victima_adds_nothing_meaningful() {
    // Sec. 10: the paper finds a DUCATI-style full-memory STLB behind
    // Victima is worth only ~0.8%; the TLB blocks capture the value.
    let r = runner();
    let vic = r.run("RND", &SystemConfig::victima(), r.warmup, r.instructions);
    let combo = r.run("RND", &SystemConfig::victima_plus_stlb(), r.warmup, r.instructions);
    assert!(combo.victima_hits > 0, "Victima still runs inside the combo");
    let gain = combo.speedup_over(&vic) - 1.0;
    assert!(gain < 0.05, "the STLB should not add meaningful speedup, got {gain:.3}");
}

#[test]
fn pom_tlb_hits_and_spills() {
    let r = runner();
    let s = r.run("RND", &SystemConfig::pom_tlb(), r.warmup, r.instructions);
    assert!(s.pom_hits > 0, "POM-TLB should serve some misses");
    assert!(s.pom_misses > 0, "POM-TLB can't be perfect on RND");
}

#[test]
fn ideal_backstops_order_by_latency() {
    let r = runner();
    let l1 = r.run("RND", &SystemConfig::ideal_backstop(4, "ideal-l1"), r.warmup, r.instructions);
    let l2 = r.run("RND", &SystemConfig::ideal_backstop(16, "ideal-l2"), r.warmup, r.instructions);
    let llc = r.run("RND", &SystemConfig::ideal_backstop(35, "ideal-llc"), r.warmup, r.instructions);
    assert!(l1.l2_miss_latency() < l2.l2_miss_latency());
    assert!(l2.l2_miss_latency() < llc.l2_miss_latency());
    assert_eq!(l1.ptws, 0, "the oracle serves every miss");
}

#[test]
fn larger_l2_tlbs_reduce_mpki_monotonically() {
    let r = runner();
    let mut last = f64::INFINITY;
    for entries in [1536usize, 8192, 65536] {
        let s = r.run("RND", &SystemConfig::with_l2_tlb(entries, 12), r.warmup, r.instructions);
        let mpki = s.l2_tlb_mpki();
        assert!(mpki <= last + 0.5, "MPKI should not grow with TLB size: {entries} gave {mpki:.1}");
        last = mpki;
    }
}
