//! Integration tests for virtualised execution: the two-dimensional
//! translation must agree with ground truth under nested paging, shadow
//! paging and virtualised Victima, and the virtualised mechanisms must
//! show the paper's qualitative behaviour.

use victima_repro::sim::{Runner, SystemConfig};
use victima_repro::workloads::Scale;

fn tiny_runner() -> Runner {
    Runner::with_budget(Scale::Tiny, 10_000, 120_000)
}

#[test]
fn nested_paging_translates_correctly() {
    let r = tiny_runner();
    let mut sys = r.build("RND", &SystemConfig::nested_paging());
    sys.run(60_000);
    // Spot-check agreement on addresses the workload actually maps.
    let mut rng = victima_repro::types::SplitMix64::new(11);
    let mut checked = 0;
    while checked < 1_000 {
        let va = victima_repro::types::VirtAddr::new(0x2000_0000 + rng.next_below(60 << 20));
        if let Some(truth) = sys.ground_truth(va) {
            assert_eq!(sys.translate_once(va), truth, "NP mistranslated {va}");
            checked += 1;
        }
    }
}

#[test]
fn victima_virt_translates_correctly_and_reduces_walks() {
    let r = tiny_runner();
    let np = r.run("RND", &SystemConfig::nested_paging(), r.warmup, r.instructions);
    let vic = r.run("RND", &SystemConfig::victima_virt(), r.warmup, r.instructions);
    assert!(vic.victima_hits > 0, "guest TLB blocks should serve misses");
    assert!(
        vic.host_ptw_reduction_vs(&np) > 0.3,
        "nested blocks + nested TLB should cut host walks, got {:.2}",
        vic.host_ptw_reduction_vs(&np)
    );
    assert!(vic.ptw_reduction_vs(&np) > 0.0, "guest walks should shrink");

    // Correctness under the virtualised Victima flows.
    let mut sys = r.build("RND", &SystemConfig::victima_virt());
    sys.run(60_000);
    let mut rng = victima_repro::types::SplitMix64::new(12);
    let mut checked = 0;
    while checked < 1_000 {
        let va = victima_repro::types::VirtAddr::new(0x2000_0000 + rng.next_below(60 << 20));
        if let Some(truth) = sys.ground_truth(va) {
            assert_eq!(sys.translate_once(va), truth, "Victima-virt mistranslated {va}");
            checked += 1;
        }
    }
}

#[test]
fn shadow_paging_matches_nested_translation() {
    let r = tiny_runner();
    let mut sys = r.build("XS", &SystemConfig::ideal_shadow_paging());
    sys.run(60_000);
    let mut rng = victima_repro::types::SplitMix64::new(13);
    let mut checked = 0;
    while checked < 1_000 {
        let va = victima_repro::types::VirtAddr::new(0x2000_0000 + rng.next_below(60 << 20));
        if let Some(truth) = sys.ground_truth(va) {
            assert_eq!(sys.translate_once(va), truth, "I-SP mistranslated {va}");
            checked += 1;
        }
    }
}

#[test]
fn nested_walks_cost_more_than_native_walks() {
    let r = tiny_runner();
    let native = r.run("RND", &SystemConfig::radix(), r.warmup, r.instructions);
    let np = r.run("RND", &SystemConfig::nested_paging(), r.warmup, r.instructions);
    assert!(
        np.l2_miss_latency() > native.l2_miss_latency(),
        "2D walks must be costlier: native {:.0} vs NP {:.0}",
        native.l2_miss_latency(),
        np.l2_miss_latency()
    );
    assert!(np.host_ptws > 0, "NP performs host walks");
}

#[test]
fn ideal_shadow_paging_beats_nested_paging() {
    let r = tiny_runner();
    let np = r.run("RND", &SystemConfig::nested_paging(), r.warmup, r.instructions);
    let isp = r.run("RND", &SystemConfig::ideal_shadow_paging(), r.warmup, r.instructions);
    assert!(isp.speedup_over(&np) > 1.0, "I-SP ≥ NP expected, got {:.3}", isp.speedup_over(&np));
    assert_eq!(isp.host_ptws, 0, "shadow paging needs no host walks");
}
