//! The trace subsystem's defining invariant: recording a workload and
//! replaying the trace yields `SimStats` byte-identical to the live
//! generator run with the same seed — for every Tiny-suite workload, at
//! any worker count (the acceptance gate for the `.vtrace` format, the
//! `System` record hook and the `trace:<path>` registry frontend).

use std::path::PathBuf;
use victima_bench::trace::{info_report, record};
use victima_repro::sim::{RunSpec, SimEngine, SystemConfig};
use victima_repro::workloads::{registry, replay::trace_name, Scale};

const WARMUP: u64 = 2_000;
const MEASURED: u64 = 20_000;

/// A per-test scratch directory under the system temp dir, removed on
/// drop so reruns start clean.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("vtrace-it-{}-{label}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Records every Tiny workload once, then checks replay against the live
/// generator run at `--jobs 1` and `--jobs 4`.
#[test]
fn replay_is_byte_identical_for_all_tiny_workloads() {
    let scratch = ScratchDir::new("suite");
    let cfg = SystemConfig::radix();

    let mut replay_specs = Vec::new();
    for name in registry::WORKLOAD_NAMES {
        let path = scratch.path(&format!("{name}.vtrace"));
        let summary = record(name, &cfg, Scale::Tiny, cfg.seed, WARMUP, MEASURED, &path)
            .unwrap_or_else(|e| panic!("{name}: record failed: {e}"));
        assert!(summary.counts.records > 0, "{name}: empty trace");
        assert!(summary.counts.instructions >= WARMUP + MEASURED, "{name}: trace covers the whole budget");
        replay_specs.push(RunSpec::new(trace_name(&path), cfg.clone(), Scale::Tiny, WARMUP, MEASURED));
    }

    let live_specs: Vec<RunSpec> = registry::WORKLOAD_NAMES
        .iter()
        .map(|&name| RunSpec::new(name, cfg.clone(), Scale::Tiny, WARMUP, MEASURED))
        .collect();
    let live = SimEngine::with_jobs(1).run_batch(live_specs);
    let replay_seq = SimEngine::with_jobs(1).run_batch(replay_specs.clone());
    let replay_par = SimEngine::with_jobs(4).run_batch(replay_specs);

    for ((l, s), p) in live.iter().zip(&replay_seq).zip(&replay_par) {
        let name = &l.workload;
        assert_eq!(l.stats, s.stats, "{name}: replay at --jobs 1 diverged from the live run");
        assert_eq!(l.stats, p.stats, "{name}: replay at --jobs 4 diverged from the live run");
    }
}

/// The reference stream is mechanism-independent: a trace recorded under
/// the radix baseline replays byte-identically under Victima too.
#[test]
fn replay_is_portable_across_native_mechanisms() {
    let scratch = ScratchDir::new("portable");
    let radix = SystemConfig::radix();
    let victima = SystemConfig::victima();
    let path = scratch.path("rnd.vtrace");
    record("RND", &radix, Scale::Tiny, radix.seed, WARMUP, MEASURED, &path).expect("record");

    let live = SimEngine::with_jobs(1)
        .run_batch(vec![RunSpec::new("RND", victima.clone(), Scale::Tiny, WARMUP, MEASURED)])
        .remove(0);
    let replayed = SimEngine::with_jobs(1)
        .run_batch(vec![RunSpec::new(trace_name(&path), victima, Scale::Tiny, WARMUP, MEASURED)])
        .remove(0);
    assert!(replayed.stats.victima_hits > 0, "the replayed run exercises Victima");
    assert_eq!(live.stats, replayed.stats, "radix-recorded trace must replay identically under Victima");
}

/// `trace info` renders a valid `report`-schema artifact whose counts
/// match the writer's summary.
#[test]
fn trace_info_artifact_round_trips_through_the_report_schema() {
    let scratch = ScratchDir::new("info");
    let cfg = SystemConfig::radix();
    let path = scratch.path("xs.vtrace");
    let summary = record("XS", &cfg, Scale::Tiny, cfg.seed, WARMUP, MEASURED, &path).expect("record");

    let r = info_report(&path).expect("info");
    assert_eq!(r.id, "trace_info");
    assert_eq!(r.metric("records").unwrap().value, summary.counts.records as f64);
    assert_eq!(r.metric("instructions").unwrap().value, summary.counts.instructions as f64);
    let json = victima_repro::report::json::to_json(&r);
    let back = victima_repro::report::json::from_json(&json).expect("info artifact parses back");
    assert_eq!(back, r);
}
