//! Integration tests for the parallel batch engine: determinism across
//! worker counts, submission-order results, and suite coverage.

use victima_repro::sim::{suite_specs, RunSpec, SimEngine, SystemConfig};
use victima_repro::workloads::{registry::WORKLOAD_NAMES, Scale};

/// The same batch must produce identical `SimStats`, in identical order,
/// at 1 worker and at 4 workers — the engine's core guarantee.
#[test]
fn full_suite_is_deterministic_across_worker_counts() {
    let specs = suite_specs(&SystemConfig::victima(), Scale::Tiny, 2_000, 25_000);
    let seq = SimEngine::with_jobs(1).run_batch(specs.clone());
    let par = SimEngine::with_jobs(4).run_batch(specs);
    assert_eq!(seq.len(), WORKLOAD_NAMES.len());
    for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(a.workload, WORKLOAD_NAMES[i], "results must come back in figure order");
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.index, b.index);
        assert_eq!(a.stats, b.stats, "{}: stats differ between 1 and 4 workers", a.workload);
    }
}

/// A duplicated spec must produce stats identical to its twin, wherever
/// the scheduler places the two copies.
#[test]
fn duplicated_spec_matches_its_twin() {
    let one = RunSpec::new("BFS", SystemConfig::radix(), Scale::Tiny, 2_000, 25_000);
    let mut specs = vec![one.clone()];
    // Pad the batch so the twins land on different workers.
    for w in ["RND", "XS", "GC"] {
        specs.push(RunSpec::new(w, SystemConfig::radix(), Scale::Tiny, 2_000, 25_000));
    }
    specs.push(one);
    let results = SimEngine::with_jobs(3).run_batch(specs);
    assert_eq!(results.first().unwrap().stats, results.last().unwrap().stats);
}

/// Mixed configs and modes batch together; results keep their spec's
/// identity.
#[test]
fn heterogeneous_batches_keep_their_identity() {
    let specs = vec![
        RunSpec::new("RND", SystemConfig::radix(), Scale::Tiny, 1_000, 10_000),
        RunSpec::new("RND", SystemConfig::victima(), Scale::Tiny, 1_000, 10_000),
        RunSpec::new("XS", SystemConfig::nested_paging(), Scale::Tiny, 1_000, 10_000),
        RunSpec::new("CC", SystemConfig::pom_tlb(), Scale::Tiny, 1_000, 10_000),
    ];
    let results = SimEngine::with_jobs(2).run_batch(specs);
    assert_eq!(results[0].config_name, "Radix");
    assert_eq!(results[1].config_name, "Victima");
    assert_eq!(results[2].config_name, "NP");
    assert_eq!(results[3].config_name, "POM-TLB");
    assert!(results.iter().all(|r| r.stats.instructions >= 10_000));
    assert!(results[1].stats.victima_hits > 0 || results[1].stats.victima_inserts > 0);
    assert!(results[2].stats.host_ptws > 0, "nested paging performs host walks");
}

/// The engine honours explicit seeds: same seed twins match, fresh seeds
/// diverge, and results stay deterministic under parallelism.
#[test]
fn seeded_specs_are_independent_but_reproducible() {
    let base = RunSpec::new("RND", SystemConfig::radix(), Scale::Tiny, 1_000, 15_000);
    let specs = vec![base.clone().with_seed(7), base.clone().with_seed(1234), base.with_seed(7)];
    let results = SimEngine::with_jobs(3).run_batch(specs);
    assert_eq!(results[0].stats, results[2].stats, "equal seeds must reproduce");
    assert_ne!(results[0].stats, results[1].stats, "fresh seeds must perturb the run");
}

/// `Runner::run_suite` (the thin wrapper) agrees with driving the engine
/// directly.
#[test]
fn runner_suite_matches_engine_suite() {
    let runner = victima_repro::sim::Runner::with_budget(Scale::Tiny, 1_000, 10_000);
    let cfg = SystemConfig::radix();
    let via_runner = runner.run_suite(&cfg);
    let via_engine = SimEngine::with_jobs(2).run_suite(&cfg, Scale::Tiny, 1_000, 10_000);
    for ((name, stats), r) in via_runner.iter().zip(&via_engine) {
        assert_eq!(*name, r.workload.as_str());
        assert_eq!(*stats, r.stats);
    }
}
