//! The checkpoint subsystem's defining invariant: `ckpt save` followed
//! by `ckpt resume` — through an actual `.vckpt` file — yields
//! `SimStats` byte-identical to the uninterrupted
//! `System::run_with_warmup` run, for every native configuration the
//! CLI can resolve. Also pins the file-level error paths (corruption,
//! tampering, missing files) and the report-schema artifacts.

use std::path::PathBuf;
use victima_bench::ckpt::{config_named, info_report, resume, resume_report, save};
use victima_repro::sim::{System, SystemConfig};
use victima_repro::trace::{Checkpoint, TraceError};
use victima_repro::workloads::{registry, Scale};

const WARMUP: u64 = 2_000;
const MEASURED: u64 = 10_000;

/// A per-test scratch directory under the system temp dir, removed on
/// drop so reruns start clean.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("vckpt-it-{}-{label}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn reference_stats(workload: &str, cfg: &SystemConfig) -> victima_repro::sim::SimStats {
    let w = registry::by_name_seeded(workload, Scale::Tiny, cfg.seed).unwrap();
    let mut sys = System::new(cfg.clone(), w);
    sys.run_with_warmup(WARMUP, MEASURED);
    sys.finalize_stats();
    sys.stats
}

/// Save → resume through a file is byte-identical to the uninterrupted
/// run, for every configuration `config_named` can rebuild (the full
/// set the CLI accepts).
#[test]
fn file_round_trip_resumes_byte_identically_for_every_config() {
    let scratch = ScratchDir::new("configs");
    for cfg in [
        SystemConfig::radix(),
        SystemConfig::victima(),
        SystemConfig::victima_plus_stlb(),
        SystemConfig::pom_tlb(),
    ] {
        assert_eq!(
            config_named(&cfg.name).map(|c| c.name),
            Some(cfg.name.clone()),
            "resume must be able to rebuild {}",
            cfg.name
        );
        let path = scratch.path(&format!("{}.vckpt", cfg.name));
        save("RND", &cfg, Scale::Tiny, cfg.seed, WARMUP, &path).unwrap();
        let (ck, ran, stats) = resume(&path, Some(MEASURED)).unwrap();
        assert_eq!(ran, MEASURED);
        assert_eq!(ck.meta.warmup, WARMUP);
        assert_eq!(
            stats,
            reference_stats("RND", &cfg),
            "{}: resumed stats differ from the uninterrupted run",
            cfg.name
        );
    }
}

/// Saving the same run twice produces byte-identical files — the
/// capture itself is deterministic, so checkpoints can be diffed and
/// content-addressed.
#[test]
fn capture_is_deterministic_on_disk() {
    let scratch = ScratchDir::new("determinism");
    let cfg = SystemConfig::victima();
    let (a, b) = (scratch.path("a.vckpt"), scratch.path("b.vckpt"));
    save("XS", &cfg, Scale::Tiny, cfg.seed, WARMUP, &a).unwrap();
    save("XS", &cfg, Scale::Tiny, cfg.seed, WARMUP, &b).unwrap();
    assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
}

/// File-level failures surface as the right typed error: a missing file
/// is `Io`, corruption and tampering are `Format` — never a panic or a
/// silent wrong resume.
#[test]
fn file_errors_are_typed() {
    let scratch = ScratchDir::new("errors");

    // Missing file.
    assert!(matches!(resume(&scratch.path("absent.vckpt"), None), Err(TraceError::Io(_))));

    let cfg = SystemConfig::radix();
    let path = scratch.path("good.vckpt");
    save("RND", &cfg, Scale::Tiny, cfg.seed, WARMUP, &path).unwrap();

    // Truncation anywhere in the file.
    let bytes = std::fs::read(&path).unwrap();
    let cut = scratch.path("cut.vckpt");
    std::fs::write(&cut, &bytes[..bytes.len() / 2]).unwrap();
    match resume(&cut, None) {
        Err(TraceError::Format(msg)) => assert!(msg.contains("truncated"), "{msg}"),
        other => panic!("expected a format error, got {other:?}"),
    }

    // A checkpoint naming a config this build cannot rebuild.
    let mut ck = Checkpoint::read_path(&path).unwrap();
    ck.meta.config = "warp-drive".into();
    let alien = scratch.path("alien.vckpt");
    ck.write_path(&alien).unwrap();
    match resume(&alien, None) {
        Err(TraceError::Format(msg)) => assert!(msg.contains("not resolvable"), "{msg}"),
        other => panic!("expected a format error, got {other:?}"),
    }

    // A tampered seed: the file decodes, but restore refuses to splice
    // warm state into a system built differently.
    let mut ck = Checkpoint::read_path(&path).unwrap();
    ck.meta.seed ^= 1;
    let reseeded = scratch.path("reseeded.vckpt");
    ck.write_path(&reseeded).unwrap();
    match resume(&reseeded, None) {
        // The rebuild takes its seed *from the checkpoint*, so identity
        // checks pass — construction divergence is what trips: the
        // reseeded page table has a different layout (counter restore
        // fails) or, failing that, the frame-allocator fingerprint.
        Err(TraceError::Format(msg)) => {
            assert!(msg.contains("pt_counters") || msg.contains("fingerprint mismatch"), "{msg}")
        }
        other => panic!("expected a format error, got {other:?}"),
    }
}

/// The `ckpt resume` and `ckpt info` artifacts carry the checkpoint's
/// provenance and survive the report-schema JSON round trip.
#[test]
fn reports_round_trip_through_the_schema() {
    let scratch = ScratchDir::new("reports");
    let cfg = SystemConfig::victima();
    let path = scratch.path("xs.vckpt");
    save("XS", &cfg, Scale::Tiny, cfg.seed, WARMUP, &path).unwrap();

    let r = resume_report(&path, Some(MEASURED)).unwrap();
    assert_eq!(r.id, "ckpt_resume");
    assert_eq!(r.provenance.warmup, WARMUP);
    assert_eq!(r.provenance.workloads, ["XS"]);
    assert!(r.metric("ipc").unwrap().value > 0.0);
    assert_eq!(report::json::from_json(&report::json::to_json(&r)).unwrap(), r);

    let i = info_report(&path).unwrap();
    assert_eq!(i.id, "ckpt_info");
    assert!(i.rows.iter().any(|row| row.label == "l2_tlb"));
    assert_eq!(
        i.metric("file_bytes").unwrap().value as u64,
        std::fs::metadata(&path).unwrap().len(),
        "info must report the actual file size"
    );
    assert_eq!(report::json::from_json(&report::json::to_json(&i)).unwrap(), i);
}
