//! Unit tests for the invalidation paths the multi-core layer leans on:
//! single-page shootdowns, full context-switch flushes, page migration,
//! and ASID-selective invalidation (entries of *other* address spaces must
//! survive).

use sim::{Runner, SystemConfig};
use tlb_sim::{SetAssocTlb, TlbConfig, TlbEntry};
use vm_types::{Asid, PageSize, VirtAddr};
use workloads::Scale;

fn warm_system(cfg: &SystemConfig) -> (sim::System, VirtAddr) {
    let r = Runner::with_budget(Scale::Tiny, 1_000, 10_000);
    let mut sys = r.build("RND", cfg);
    sys.run(5_000);
    // Find a 4KB-mapped address the TLBs now hold: translate a fresh one.
    let mut probe = 0x2000_0000u64;
    let va = loop {
        let va = VirtAddr::new(probe);
        if sys.page_size_at(va) == Some(PageSize::Size4K) {
            break va;
        }
        probe += 4096;
    };
    sys.translate_once(va);
    (sys, va)
}

/// After a shootdown, the next translation must re-walk (the stale frame
/// is gone from every TLB level) and agree with ground truth.
#[test]
fn tlb_shootdown_forces_rewalk_to_new_ground_truth() {
    for cfg in [SystemConfig::radix(), SystemConfig::victima(), SystemConfig::pom_tlb()] {
        let (mut sys, va) = warm_system(&cfg);
        let before = sys.ground_truth(va).expect("mapped");
        assert_eq!(sys.translate_once(va), before, "{}: warm TLB agrees", cfg.name);

        let after = sys.migrate_page(va);
        assert_ne!(after, before, "{}: migration must move the frame", cfg.name);
        sys.tlb_shootdown(va);

        assert_eq!(sys.translate_once(va), after, "{}: post-shootdown translation is fresh", cfg.name);
        assert_eq!(sys.ground_truth(va), Some(after));
    }
}

/// Without the shootdown, the stale TLB entry keeps translating to the old
/// frame — proving the shootdown (not the migration) does the work.
#[test]
fn migration_without_shootdown_leaves_stale_entries() {
    let (mut sys, va) = warm_system(&SystemConfig::radix());
    let before = sys.translate_once(va);
    let after = sys.migrate_page(va);
    assert_ne!(after, before);
    assert_eq!(sys.translate_once(va), before, "stale entry must still hit");
    assert_ne!(sys.ground_truth(va), Some(before), "page table already moved on");
}

/// A full context-switch flush drops every translation; the stream keeps
/// running correctly afterwards (it re-walks everything).
#[test]
fn context_switch_flush_drops_all_translations() {
    let (mut sys, va) = warm_system(&SystemConfig::victima());
    let truth = sys.ground_truth(va).expect("mapped");
    let walks_before = sys.stats.ptws;
    sys.context_switch_flush();
    let l2_misses_before = sys.stats.l2_tlb_misses;
    assert_eq!(sys.translate_once(va), truth, "flush must not corrupt translation");
    assert!(sys.stats.l2_tlb_misses > l2_misses_before, "first post-flush access misses");
    assert!(sys.stats.ptws > walks_before, "and must walk the page table");
}

/// ASID-selective invalidation on the raw TLB: victims of the flushed
/// address space disappear, every other ASID's entry survives.
#[test]
fn invalidate_asid_spares_other_address_spaces() {
    let mut tlb = SetAssocTlb::new(TlbConfig { name: "T", entries: 64, ways: 4, latency: 1 });
    let (a, b, c) = (Asid::new(1), Asid::new(2), Asid::new(3));
    for vpn in 0..8u64 {
        tlb.fill(TlbEntry::new(vpn, a, PageSize::Size4K, vpn));
        tlb.fill(TlbEntry::new(vpn, b, PageSize::Size4K, 100 + vpn));
        tlb.fill(TlbEntry::new(vpn, c, PageSize::Size2M, 200 + vpn));
    }
    assert_eq!(tlb.invalidate_asid(b), 8);
    for vpn in 0..8u64 {
        assert!(tlb.probe(vpn, b, PageSize::Size4K).is_none(), "ASID 2 flushed");
        assert_eq!(tlb.probe(vpn, a, PageSize::Size4K).expect("ASID 1 survives").frame, vpn);
        assert_eq!(tlb.probe(vpn, c, PageSize::Size2M).expect("ASID 3 survives").frame, 200 + vpn);
    }
    assert_eq!(tlb.invalidate_asid(b), 0, "second selective flush finds nothing");
}

/// The system-level ASID-selective path: after `invalidate_asid` for the
/// resident space, translations re-walk, and the invalidation count is
/// visible in the TLB statistics.
#[test]
fn system_invalidate_asid_forces_rewalk() {
    let (mut sys, va) = warm_system(&SystemConfig::victima());
    let truth = sys.ground_truth(va).expect("mapped");
    let asid = sys.process().asid();
    let dropped = sys.invalidate_asid(asid);
    assert!(dropped > 0, "a warm system holds entries to drop");
    let walks_before = sys.stats.ptws;
    assert_eq!(sys.translate_once(va), truth);
    assert!(sys.stats.ptws > walks_before, "selective flush forces a re-walk");
    // Invalidating a never-used ASID is a no-op.
    assert_eq!(sys.invalidate_asid(Asid::new(999)), 0);
}
