//! Property-based tests (proptest) over the core data structures and
//! invariants that the whole reproduction rests on.

use proptest::prelude::*;
use victima_repro::mem::{BlockKind, Cache, CacheConfig, Lru, ReplacementCtx};
use victima_repro::pt::{FrameAllocator, Pte, RadixPageTable};
use victima_repro::tlb::{SetAssocTlb, TlbConfig, TlbEntry};
use victima_repro::types::{Asid, PageSize, PhysAddr, VirtAddr};
use victima_repro::victima::tlb_block;

proptest! {
    /// VPN/offset decomposition recomposes for both page sizes.
    #[test]
    fn va_decomposition_roundtrips(raw in 0u64..(1 << 48)) {
        let va = VirtAddr::new(raw);
        for size in PageSize::ALL {
            let recomposed = (va.vpn(size) << size.shift()) | va.page_offset(size);
            prop_assert_eq!(recomposed, va.raw());
        }
    }

    /// Radix indices always fit 9 bits and identify the original VA
    /// together with the page offset.
    #[test]
    fn radix_indices_cover_va(raw in 0u64..(1 << 48)) {
        let va = VirtAddr::new(raw);
        let mut rebuilt = va.page_offset(PageSize::Size4K);
        for level in 0..4u8 {
            let idx = va.radix_index(level) as u64;
            prop_assert!(idx < 512);
            rebuilt |= idx << (12 + 9 * level as u64);
        }
        prop_assert_eq!(rebuilt, va.raw());
    }

    /// PTE counter updates never corrupt the frame / flags, from any
    /// starting state.
    #[test]
    fn pte_counters_never_corrupt_mapping(frame in 0u64..(1 << 40), huge: bool, bumps in 0usize..40) {
        let size = if huge { PageSize::Size2M } else { PageSize::Size4K };
        let mut pte = Pte::leaf(frame, size);
        for i in 0..bumps {
            if i % 2 == 0 { pte.bump_ptw_freq() } else { pte.bump_ptw_cost() }
        }
        prop_assert_eq!(pte.frame(), frame & ((1 << 40) - 1));
        prop_assert_eq!(pte.huge(), huge);
        prop_assert!(pte.present());
        prop_assert!(pte.ptw_freq() <= 7);
        prop_assert!(pte.ptw_cost() <= 15);
    }

    /// The TLB-block (set, tag) mapping is injective over page groups:
    /// distinct groups never collide.
    #[test]
    fn tlb_block_index_is_injective(a in 0u64..(1 << 33), b in 0u64..(1 << 33)) {
        prop_assume!(a != b);
        let (sa, ta) = tlb_block::group_index(a, 2048);
        let (sb, tb) = tlb_block::group_index(b, 2048);
        prop_assert!((sa, ta) != (sb, tb), "groups {a} and {b} collided");
    }

    /// Any address within a block's 8-page span maps to the same (set,
    /// tag); addresses outside never do.
    #[test]
    fn tlb_block_span_is_exactly_8_pages(raw in 0u64..(1 << 47), page in 0u64..16) {
        let base = VirtAddr::new(raw).align_down(PageSize::Size4K);
        let group_base = VirtAddr::new(base.raw() & !(8 * 4096 - 1));
        let key0 = tlb_block::tlb_block_index(group_base, PageSize::Size4K, 2048);
        let probe = group_base.add(page * 4096);
        let key = tlb_block::tlb_block_index(probe, PageSize::Size4K, 2048);
        if page < 8 {
            prop_assert_eq!(key, key0);
        } else {
            prop_assert_ne!(key, key0);
        }
    }

    /// A TLB fill is always observable by a subsequent probe with the same
    /// key, and never by a probe with a different ASID.
    #[test]
    fn tlb_fill_then_probe(vpns in prop::collection::vec(0u64..100_000, 1..50)) {
        let mut tlb = SetAssocTlb::new(TlbConfig { name: "P", entries: 64, ways: 4, latency: 1 });
        let asid = Asid::new(1);
        for &vpn in &vpns {
            tlb.fill(TlbEntry::new(vpn, asid, PageSize::Size4K, vpn + 7));
            let hit = tlb.probe(vpn, asid, PageSize::Size4K);
            prop_assert!(hit.is_some(), "just-filled vpn {vpn} must hit");
            prop_assert_eq!(hit.unwrap().frame, vpn + 7);
            prop_assert!(tlb.probe(vpn, Asid::new(2), PageSize::Size4K).is_none());
        }
        prop_assert!(tlb.valid_entries() <= 64);
    }

    /// Cache fill/probe coherence under random interleavings of data and
    /// translation blocks: a probe hit implies a matching prior fill, and
    /// the translation-block counter matches the actual population.
    #[test]
    fn cache_translation_block_count_is_exact(ops in prop::collection::vec((0u64..4096, prop::bool::ANY), 1..200)) {
        let ctx = ReplacementCtx::default();
        let mut cache = Cache::new(
            CacheConfig { name: "P", size_bytes: 64 << 10, ways: 8, block_bytes: 64, latency: 1 },
            Box::new(Lru::new()),
        );
        for &(x, is_tlb) in &ops {
            if is_tlb {
                let (set, tag) = tlb_block::group_index(x, cache.num_sets());
                if !cache.contains_translation(set, tag, BlockKind::Tlb, Asid::new(1), PageSize::Size4K) {
                    cache.fill_translation(set, tag, BlockKind::Tlb, Asid::new(1), PageSize::Size4K, &ctx);
                }
            } else {
                let pa = PhysAddr::new(x * 64);
                if !cache.access_data(pa, false, &ctx) {
                    cache.fill_data(pa, false, false, &ctx);
                }
            }
        }
        let actual = cache.iter_valid().filter(|b| b.kind.is_translation()).count();
        prop_assert_eq!(actual, cache.translation_block_count());
    }

    /// Page tables: map-then-walk returns exactly what was mapped, for
    /// arbitrary disjoint VPNs.
    #[test]
    fn page_table_walk_returns_mapping(vpns in prop::collection::hash_set(0u64..(1 << 24), 1..40)) {
        let mut alloc = FrameAllocator::new(1 << 30, 99);
        let mut pt = RadixPageTable::new(&mut alloc);
        let mut expected = Vec::new();
        for &vpn in &vpns {
            let frame = alloc.alloc_4k();
            let va = VirtAddr::new(vpn << 12);
            pt.map(va, frame, PageSize::Size4K, &mut alloc);
            expected.push((va, frame));
        }
        for (va, frame) in expected {
            let walk = pt.walk(va);
            prop_assert!(walk.is_some());
            prop_assert_eq!(walk.unwrap().frame, frame);
        }
    }
}
