//! Randomized property tests over the core data structures and invariants
//! that the whole reproduction rests on. Cases are drawn from the
//! workspace's deterministic [`SplitMix64`] generator (no external
//! property-testing dependency), so every failure is reproducible.

use victima_repro::mem::{BlockKind, Cache, CacheConfig, Policy, ReplacementCtx};
use victima_repro::pt::{FrameAllocator, Pte, RadixPageTable};
use victima_repro::tlb::{SetAssocTlb, TlbConfig, TlbEntry};
use victima_repro::types::{Asid, PageSize, PhysAddr, SplitMix64, VirtAddr};
use victima_repro::victima::tlb_block;

const CASES: usize = 500;

/// VPN/offset decomposition recomposes for both page sizes.
#[test]
fn va_decomposition_roundtrips() {
    let mut rng = SplitMix64::new(0x9001);
    for _ in 0..CASES {
        let va = VirtAddr::new(rng.next_below(1 << 48));
        for size in PageSize::ALL {
            let recomposed = (va.vpn(size) << size.shift()) | va.page_offset(size);
            assert_eq!(recomposed, va.raw(), "va {:#x}", va.raw());
        }
    }
}

/// Radix indices always fit 9 bits and identify the original VA together
/// with the page offset.
#[test]
fn radix_indices_cover_va() {
    let mut rng = SplitMix64::new(0x9002);
    for _ in 0..CASES {
        let va = VirtAddr::new(rng.next_below(1 << 48));
        let mut rebuilt = va.page_offset(PageSize::Size4K);
        for level in 0..4u8 {
            let idx = va.radix_index(level) as u64;
            assert!(idx < 512);
            rebuilt |= idx << (12 + 9 * level as u64);
        }
        assert_eq!(rebuilt, va.raw());
    }
}

/// PTE counter updates never corrupt the frame / flags, from any starting
/// state.
#[test]
fn pte_counters_never_corrupt_mapping() {
    let mut rng = SplitMix64::new(0x9003);
    for _ in 0..CASES {
        let frame = rng.next_below(1 << 40);
        let huge = rng.chance(0.5);
        let bumps = rng.next_below(40) as usize;
        let size = if huge { PageSize::Size2M } else { PageSize::Size4K };
        let mut pte = Pte::leaf(frame, size);
        for i in 0..bumps {
            if i % 2 == 0 {
                pte.bump_ptw_freq()
            } else {
                pte.bump_ptw_cost()
            }
        }
        assert_eq!(pte.frame(), frame & ((1 << 40) - 1));
        assert_eq!(pte.huge(), huge);
        assert!(pte.present());
        assert!(pte.ptw_freq() <= 7);
        assert!(pte.ptw_cost() <= 15);
    }
}

/// The TLB-block (set, tag) mapping is injective over page groups:
/// distinct groups never collide.
#[test]
fn tlb_block_index_is_injective() {
    let mut rng = SplitMix64::new(0x9004);
    for _ in 0..CASES {
        let a = rng.next_below(1 << 33);
        let b = rng.next_below(1 << 33);
        if a == b {
            continue;
        }
        let (sa, ta) = tlb_block::group_index(a, 2048);
        let (sb, tb) = tlb_block::group_index(b, 2048);
        assert!((sa, ta) != (sb, tb), "groups {a} and {b} collided");
    }
}

/// Any address within a block's 8-page span maps to the same (set, tag);
/// addresses outside never do.
#[test]
fn tlb_block_span_is_exactly_8_pages() {
    let mut rng = SplitMix64::new(0x9005);
    for _ in 0..CASES {
        let raw = rng.next_below(1 << 47);
        let page = rng.next_below(16);
        let base = VirtAddr::new(raw).align_down(PageSize::Size4K);
        let group_base = VirtAddr::new(base.raw() & !(8 * 4096 - 1));
        let key0 = tlb_block::tlb_block_index(group_base, PageSize::Size4K, 2048);
        let probe = group_base.add(page * 4096);
        let key = tlb_block::tlb_block_index(probe, PageSize::Size4K, 2048);
        if page < 8 {
            assert_eq!(key, key0);
        } else {
            assert_ne!(key, key0);
        }
    }
}

/// A TLB fill is always observable by a subsequent probe with the same
/// key, and never by a probe with a different ASID.
#[test]
fn tlb_fill_then_probe() {
    let mut rng = SplitMix64::new(0x9006);
    for _ in 0..50 {
        let mut tlb = SetAssocTlb::new(TlbConfig { name: "P", entries: 64, ways: 4, latency: 1 });
        let asid = Asid::new(1);
        let n = 1 + rng.next_below(49);
        for _ in 0..n {
            let vpn = rng.next_below(100_000);
            tlb.fill(TlbEntry::new(vpn, asid, PageSize::Size4K, vpn + 7));
            let hit = tlb.probe(vpn, asid, PageSize::Size4K);
            assert!(hit.is_some(), "just-filled vpn {vpn} must hit");
            assert_eq!(hit.unwrap().frame, vpn + 7);
            assert!(tlb.probe(vpn, Asid::new(2), PageSize::Size4K).is_none());
        }
        assert!(tlb.valid_entries() <= 64);
    }
}

/// Cache fill/probe coherence under random interleavings of data and
/// translation blocks: the translation-block counter matches the actual
/// population.
#[test]
fn cache_translation_block_count_is_exact() {
    let mut rng = SplitMix64::new(0x9007);
    for _ in 0..30 {
        let ctx = ReplacementCtx::default();
        let mut cache = Cache::new(
            CacheConfig { name: "P", size_bytes: 64 << 10, ways: 8, block_bytes: 64, latency: 1 },
            Policy::lru(),
        );
        let ops = 1 + rng.next_below(199);
        for _ in 0..ops {
            let x = rng.next_below(4096);
            if rng.chance(0.5) {
                let (set, tag) = tlb_block::group_index(x, cache.num_sets());
                if !cache.contains_translation(set, tag, BlockKind::Tlb, Asid::new(1), PageSize::Size4K) {
                    cache.fill_translation(set, tag, BlockKind::Tlb, Asid::new(1), PageSize::Size4K, &ctx);
                }
            } else {
                let pa = PhysAddr::new(x * 64);
                if !cache.access_data(pa, false, &ctx) {
                    cache.fill_data(pa, false, false, &ctx);
                }
            }
        }
        let actual = cache.iter_valid().filter(|b| b.kind.is_translation()).count();
        assert_eq!(actual, cache.translation_block_count());
    }
}

/// Page tables: map-then-walk returns exactly what was mapped, for
/// arbitrary disjoint VPNs.
#[test]
fn page_table_walk_returns_mapping() {
    let mut rng = SplitMix64::new(0x9008);
    for _ in 0..20 {
        let mut alloc = FrameAllocator::new(1 << 30, 99);
        let mut pt = RadixPageTable::new(&mut alloc);
        let mut expected = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let n = 1 + rng.next_below(39);
        for _ in 0..n {
            let vpn = rng.next_below(1 << 24);
            if !seen.insert(vpn) {
                continue;
            }
            let frame = alloc.alloc_4k();
            let va = VirtAddr::new(vpn << 12);
            pt.map(va, frame, PageSize::Size4K, &mut alloc);
            expected.push((va, frame));
        }
        for (va, frame) in expected {
            let walk = pt.walk(va);
            assert!(walk.is_some());
            assert_eq!(walk.unwrap().frame, frame);
        }
    }
}

/// Varint codec: any seeded stream of 64-bit values round-trips, and
/// every prefix truncation of the encoding is rejected without panicking.
#[test]
fn varint_round_trips_and_rejects_truncation() {
    use victima_repro::types::codec;
    let mut rng = SplitMix64::new(0x9009);
    for _ in 0..CASES {
        let n = 1 + rng.next_below(64) as usize;
        let values: Vec<u64> = (0..n).map(|_| rng.next_u64() >> (rng.next_below(64) as u32)).collect();
        let mut buf = Vec::new();
        for &v in &values {
            codec::put_uvarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(codec::take_uvarint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len(), "decode must consume exactly the encoding");
        // Any truncation of a single max-length encoding fails cleanly.
        let mut one = Vec::new();
        codec::put_uvarint(&mut one, u64::MAX);
        assert_eq!(one.len(), codec::MAX_VARINT_BYTES);
        for cut in 0..one.len() {
            assert_eq!(codec::take_uvarint(&one[..cut], &mut 0), None);
        }
    }
}

/// Delta codec: random (vaddr, pc, gap, kind) streams survive the full
/// `.vtrace` write→read cycle verbatim at arbitrary chunk sizes.
#[test]
fn trace_delta_codec_round_trips_random_streams() {
    use victima_repro::trace::{TraceHeader, TraceReader, TraceScale, TraceWriter};
    use victima_repro::types::MemRef;
    let mut rng = SplitMix64::new(0x900a);
    for case in 0..20 {
        let n = 1 + rng.next_below(3_000) as usize;
        let chunk = 1 + rng.next_below(300);
        let refs: Vec<MemRef> = (0..n)
            .map(|_| {
                let vaddr = VirtAddr::new(rng.next_below(1 << 48));
                let pc = rng.next_u64();
                let gap = rng.next_below(1 << 20) as u32;
                if rng.chance(0.5) {
                    MemRef::store(vaddr, pc, gap)
                } else {
                    MemRef::load(vaddr, pc, gap)
                }
            })
            .collect();
        let header = TraceHeader::new("PROP", TraceScale::Tiny, case, 0, n as u64);
        let mut w = TraceWriter::new(Vec::new(), &header).unwrap().with_chunk_records(chunk);
        for &r in &refs {
            w.push(r);
        }
        let (bytes, summary) = w.finish_into_inner().unwrap();
        assert_eq!(summary.counts.records, n as u64);
        let got: Vec<MemRef> = TraceReader::new(&bytes[..]).unwrap().records().map(|r| r.unwrap()).collect();
        assert_eq!(got, refs, "case {case} (chunk {chunk})");
    }
}
