//! Cross-crate integration tests: functional correctness of address
//! translation under every mechanism — whatever the TLBs, POM-TLB or
//! Victima's TLB blocks cache, the translation the core observes must
//! equal the page table's ground truth, including across shootdowns and
//! migrations.

use victima_repro::sim::{Runner, System, SystemConfig};
use victima_repro::types::{SplitMix64, VirtAddr};
use victima_repro::workloads::{registry, RegionSpec, Scale, Workload};

/// A tiny deterministic workload that touches a fixed region randomly.
struct Probe {
    base: VirtAddr,
    bytes: u64,
    rng: SplitMix64,
}

impl Probe {
    fn new(bytes: u64) -> Self {
        Self { base: VirtAddr::new(0), bytes, rng: SplitMix64::new(0x9e0) }
    }
}

impl Workload for Probe {
    fn name(&self) -> &'static str {
        "PROBE"
    }
    fn region_specs(&self) -> Vec<RegionSpec> {
        vec![RegionSpec { name: "data", bytes: self.bytes, huge_fraction: 0.3 }]
    }
    fn init(&mut self, bases: &[VirtAddr]) {
        self.base = bases[0];
    }
    fn fill(&mut self, out: &mut Vec<victima_repro::types::MemRef>) {
        for _ in 0..16 {
            let off = self.rng.next_below(self.bytes);
            out.push(victima_repro::types::MemRef::load(self.base.add(off), 0x40_0000, 2));
        }
    }
}

fn probe_system(cfg: SystemConfig) -> (System, VirtAddr, u64) {
    let bytes = 64 << 20;
    let sys = System::new(cfg, Box::new(Probe::new(bytes)));
    // The probe region is the second mapped region (code is first); find
    // its base via ground truth on a known offset pattern: the Probe
    // workload stored it, but we can simply re-derive by scanning the run.
    // Simplest: run a little, then use translate_once on addresses we know
    // are mapped by checking ground_truth.
    (sys, VirtAddr::new(0), bytes)
}

/// Exhaustive agreement between the timed translation path and ground
/// truth, for every mechanism, while the system is running (so TLBs,
/// POM-TLB and TLB blocks are all warm and in arbitrary states).
#[test]
fn translation_agrees_with_ground_truth_under_all_mechanisms() {
    let configs = [
        SystemConfig::radix(),
        SystemConfig::with_l3_tlb(8192, 15),
        SystemConfig::pom_tlb(),
        SystemConfig::victima(),
        SystemConfig::victima_agnostic_srrip(),
    ];
    let mut rng = SplitMix64::new(42);
    for cfg in configs {
        let name = cfg.name.clone();
        let (mut sys, _, _) = probe_system(cfg);
        sys.run(100_000);
        // Probe random addresses: find mapped ones via ground truth.
        let mut checked = 0;
        while checked < 2_000 {
            let va = VirtAddr::new(0x2000_0000 + rng.next_below(80 << 20));
            if let Some(truth) = sys.ground_truth(va) {
                let got = sys.translate_once(va);
                assert_eq!(got, truth, "{name}: wrong translation for {va}");
                checked += 1;
            }
        }
        // And keep running afterwards — the probes must not have corrupted
        // any state.
        sys.run(20_000);
    }
}

/// After a page migration + TLB shootdown, every mechanism must observe
/// the new mapping (stale TLB entries, POM entries, and Victima TLB
/// blocks must all be dropped).
#[test]
fn shootdown_invalidates_every_cached_translation() {
    for cfg in [SystemConfig::radix(), SystemConfig::pom_tlb(), SystemConfig::victima()] {
        let name = cfg.name.clone();
        let (mut sys, _, _) = probe_system(cfg);
        sys.run(200_000);
        // Pick a mapped 4KB page (the Probe region mixes sizes; search).
        let mut rng = SplitMix64::new(7);
        // migrate_page works on 4KB pages; find a mapped one.
        let va = loop {
            let cand = VirtAddr::new(0x2000_0000 + rng.next_below(80 << 20));
            if sys.page_size_at(cand) == Some(victima_repro::types::PageSize::Size4K) {
                break cand;
            }
        };
        // Warm the translation into every structure.
        let old = sys.translate_once(va);
        assert_eq!(Some(old), sys.ground_truth(va));
        // Migrate and shoot down.
        let new = sys.migrate_page(va);
        assert_ne!(old, new, "{name}: migration must change the frame");
        sys.tlb_shootdown(va);
        let got = sys.translate_once(va);
        assert_eq!(got, new, "{name}: stale translation survived the shootdown");
        assert_eq!(Some(new), sys.ground_truth(va));
    }
}

/// A full context-switch flush must leave the system consistent and
/// functional.
#[test]
fn context_switch_flush_is_safe() {
    let (mut sys, _, _) = probe_system(SystemConfig::victima());
    sys.run(150_000);
    sys.context_switch_flush();
    // All translation state dropped; runs must still be correct.
    let mut rng = SplitMix64::new(3);
    let mut checked = 0;
    while checked < 500 {
        let va = VirtAddr::new(0x2000_0000 + rng.next_below(80 << 20));
        if let Some(truth) = sys.ground_truth(va) {
            assert_eq!(sys.translate_once(va), truth);
            checked += 1;
        }
    }
    sys.run(50_000);
}

/// Every registry workload runs end-to-end on the baseline at Tiny scale
/// without page faults and with plausible statistics.
#[test]
fn all_workloads_run_on_baseline() {
    let runner = Runner::with_budget(Scale::Tiny, 2_000, 30_000);
    for name in registry::WORKLOAD_NAMES {
        let stats = runner.run_default(name, &SystemConfig::radix());
        assert!(stats.instructions >= 30_000, "{name}");
        assert!(stats.mem_refs > 0, "{name}");
        assert!(stats.cycles() > 0, "{name}");
        assert!(stats.l1_tlb_hits + stats.l1_tlb_misses >= stats.mem_refs, "{name}");
    }
}
