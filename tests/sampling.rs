//! Differential tests for SMARTS-style interval sampling: sampled
//! estimates must track full-detail references within stated error
//! bounds for every workload, preserve the paper's mechanism ranking,
//! stay schedule-deterministic across worker counts, and feed the
//! record hook exactly the references the stream produced.
//!
//! Tolerances are honest, measured bounds, not aspirations: IPC is
//! biased low by caches the fast-forward leaves cold (the detailed
//! warm-up only partially repairs them), while TLB miss rates — the
//! quantity this paper is about — track much tighter because
//! fast-forward functionally warms the L2 TLB.

use victima_repro::sim::sampling::{run_sampled, SamplingConfig};
use victima_repro::sim::{RunSpec, SimEngine, SimStats, System, SystemConfig};
use victima_repro::workloads::{registry, registry::WORKLOAD_NAMES, Scale};

/// Tiny-scale sampling profile used throughout: 10 windows of 2K
/// detailed instructions, 20K fast-forwarded + 1K detail-warmed between
/// windows.
const WARMUP: u64 = 2_000;
const DETAILED_TOTAL: u64 = 20_000;
const FAST: u64 = 20_000;
const DETAILED: u64 = 2_000;
const WARM: u64 = 1_000;

/// The stream span a sampled run covers: 10 windows, 9 gaps.
const SPAN: u64 = DETAILED_TOTAL + 9 * (FAST + WARM);

/// Relative IPC error bound vs. the full-detail reference (see module
/// docs for why this is the looser bound; measured max at this profile
/// is 20.3%, on CC).
const IPC_TOL: f64 = 0.22;

/// Relative L2-TLB MPKI error bound vs. the full-detail reference, for
/// workloads whose reference MPKI is at least [`MPKI_FLOOR`] (measured
/// max 8.5%, on XS). Below the floor a run of 20K measured
/// instructions expects only a few dozen misses, so relative error is
/// noise amplification — those workloads are bounded absolutely by
/// [`MPKI_ABS_TOL`] instead (measured max 2.30 MPKI, on BC).
const MPKI_TOL: f64 = 0.10;
const MPKI_FLOOR: f64 = 10.0;
const MPKI_ABS_TOL: f64 = 3.0;

fn spec() -> SamplingConfig {
    SamplingConfig { fast: FAST, detailed: DETAILED, warm: WARM }
}

fn sampled_specs(cfg: &SystemConfig) -> Vec<RunSpec> {
    WORKLOAD_NAMES
        .iter()
        .map(|&w| RunSpec::new(w, cfg.clone(), Scale::Tiny, WARMUP, DETAILED_TOTAL).with_sampling(spec()))
        .collect()
}

fn full_specs(cfg: &SystemConfig) -> Vec<RunSpec> {
    WORKLOAD_NAMES.iter().map(|&w| RunSpec::new(w, cfg.clone(), Scale::Tiny, WARMUP, SPAN)).collect()
}

fn rel_err(estimate: f64, reference: f64) -> f64 {
    (estimate - reference).abs() / reference.abs().max(1e-12)
}

/// Sampled IPC and L2-TLB MPKI must track a full-detail run over the
/// same stream span for every workload, under both the radix baseline
/// and Victima.
#[test]
fn sampled_estimates_track_full_detail_for_every_workload() {
    let engine = SimEngine::with_jobs(4);
    for cfg in [SystemConfig::radix(), SystemConfig::victima()] {
        let full = engine.run_batch(full_specs(&cfg));
        let sampled = engine.run_batch(sampled_specs(&cfg));
        for (f, s) in full.iter().zip(&sampled) {
            let (fs, ss) = (&f.stats, &s.stats);
            let meta = ss.sampling.as_ref().expect("sampled stats carry sampling meta");
            assert_eq!(meta.periods, 10, "{}: expected 10 windows", f.workload);
            assert_eq!(meta.skipped_instructions, 9 * FAST);
            let ipc_err = rel_err(ss.ipc(), fs.ipc());
            assert!(
                ipc_err <= IPC_TOL,
                "{} under {}: sampled IPC {:.4} vs full {:.4} (err {:.1}% > {:.0}%)",
                f.workload,
                cfg.name,
                ss.ipc(),
                fs.ipc(),
                ipc_err * 100.0,
                IPC_TOL * 100.0
            );
            let (fm, sm) = (fs.l2_tlb_mpki(), ss.l2_tlb_mpki());
            let ok =
                if fm < MPKI_FLOOR { (sm - fm).abs() <= MPKI_ABS_TOL } else { rel_err(sm, fm) <= MPKI_TOL };
            assert!(ok, "{} under {}: sampled L2-TLB MPKI {:.3} vs full {:.3}", f.workload, cfg.name, sm, fm);
        }
    }
}

/// The paper's headline ranking — Victima does not lose to the radix
/// baseline on TLB-stressed workloads — must survive sampling.
#[test]
fn mechanism_ranking_survives_sampling() {
    let engine = SimEngine::with_jobs(4);
    let radix = engine.run_batch(sampled_specs(&SystemConfig::radix()));
    let victima = engine.run_batch(sampled_specs(&SystemConfig::victima()));
    let speedups: Vec<f64> = radix.iter().zip(&victima).map(|(r, v)| v.stats.ipc() / r.stats.ipc()).collect();
    let gmean = victima_repro::types::geomean(&speedups);
    assert!(gmean >= 1.0, "sampled Victima-vs-radix gmean fell below 1.0: {gmean:.4}");
    // RND thrashes the TLB by construction; Victima must win there, not
    // just on average.
    let rnd = WORKLOAD_NAMES.iter().position(|&w| w == "RND").unwrap();
    assert!(speedups[rnd] > 1.0, "sampled RND speedup {:.4} lost the TLB-stressed ranking", speedups[rnd]);
}

/// Sampled runs are schedule-deterministic: the engine returns
/// byte-identical stats at 1 worker and at 4.
#[test]
fn sampled_results_identical_across_worker_counts() {
    let cfg = SystemConfig::victima();
    let seq = SimEngine::with_jobs(1).run_batch(sampled_specs(&cfg));
    let par = SimEngine::with_jobs(4).run_batch(sampled_specs(&cfg));
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.stats, b.stats, "{}: sampled stats differ between 1 and 4 workers", a.workload);
    }
}

/// The record hook sees exactly the references the stream produced, in
/// order, exactly once each — under plain detailed runs and under
/// sampling (where warm-up, detailed windows, pure skips and functional
/// fast-forwards each traverse the stream differently).
#[test]
fn record_hook_sees_every_reference_exactly_once() {
    use std::cell::RefCell;
    use std::rc::Rc;

    let cfg = SystemConfig::victima();
    let build = || {
        let w = registry::by_name_seeded("RND", Scale::Tiny, cfg.seed).unwrap();
        System::new(cfg.clone(), w)
    };
    let record = |run: &dyn Fn(&mut System)| {
        let mut sys = build();
        let seen = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        sys.set_record_hook(Box::new(move |r| sink.borrow_mut().push(r.vaddr.raw())));
        run(&mut sys);
        let refs = sys.refs_consumed();
        drop(sys);
        let seen = Rc::try_unwrap(seen).unwrap().into_inner();
        assert_eq!(seen.len() as u64, refs, "hook fired a different number of times than refs consumed");
        seen
    };

    // The canonical stream: a pure skip simulates nothing, so its hook
    // trace is the generator's raw output.
    let canonical = record(&|sys: &mut System| sys.skip(WARMUP + SPAN + 100));
    let detailed = record(&|sys: &mut System| sys.run_with_warmup(WARMUP, DETAILED_TOTAL));
    let sampled = record(&|sys: &mut System| run_sampled(sys, WARMUP, DETAILED_TOTAL, &spec()));

    assert_eq!(
        detailed[..],
        canonical[..detailed.len()],
        "detailed run recorded references the generator did not produce"
    );
    assert_eq!(
        sampled[..],
        canonical[..sampled.len()],
        "sampled run recorded references the generator did not produce"
    );
    assert!(
        sampled.len() > detailed.len(),
        "the sampled run spans fast-forward intervals and must consume more references"
    );
}

/// Sampling through the engine equals calling `run_sampled` directly —
/// the `RunSpec::with_sampling` plumbing adds nothing and loses nothing.
#[test]
fn engine_sampling_matches_direct_run_sampled() {
    let cfg = SystemConfig::radix();
    let spec_list =
        vec![RunSpec::new("XS", cfg.clone(), Scale::Tiny, WARMUP, DETAILED_TOTAL).with_sampling(spec())];
    let via_engine: SimStats = SimEngine::with_jobs(1).run_batch(spec_list).remove(0).stats;
    let w = registry::by_name_seeded("XS", Scale::Tiny, cfg.seed).unwrap();
    let mut sys = System::new(cfg, w);
    run_sampled(&mut sys, WARMUP, DETAILED_TOTAL, &spec());
    assert_eq!(via_engine, sys.stats);
}
