//! Integration tests for the multi-core, multi-programmed subsystem:
//! shared-LLC wiring, schedule determinism, oversubscription with every
//! context-switch policy, and inter-core shootdowns.

use sim::multicore::run_mix_pinned;
use sim::{CtxSwitchPolicy, MultiCoreSystem, SchedConfig, SystemConfig};
use vm_types::VirtAddr;
use workloads::{mixes, registry, Scale};

fn two_core(cfg: &SystemConfig, sched: SchedConfig) -> MultiCoreSystem {
    let w = vec![
        registry::by_name_seeded("RND", Scale::Tiny, 7).unwrap(),
        registry::by_name_seeded("XS", Scale::Tiny, 8).unwrap(),
    ];
    MultiCoreSystem::new(cfg, w, 2, sched)
}

#[test]
fn pinned_two_core_runs_and_shares_the_llc() {
    let cfg = SystemConfig::victima();
    let mut sys = two_core(&cfg, SchedConfig::pinned(500));
    sys.run_with_warmup(2_000, 20_000);

    let procs = sys.proc_summaries();
    assert_eq!(procs.len(), 2);
    assert_eq!(procs[0].workload, "RND");
    assert_eq!(procs[1].workload, "XS");
    for p in &procs {
        assert!(p.instructions >= 20_000, "{}: ran its budget", p.workload);
        assert!(p.ipc > 0.0);
    }
    // Distinct ASIDs per process.
    assert_ne!(procs[0].asid, procs[1].asid);
    // Both cores generated L2 misses that drained into the one LLC.
    let l3_lookups = sys.llc().borrow().l3().stats.hits + sys.llc().borrow().l3().stats.misses;
    assert!(l3_lookups > 0, "shared L3 must see traffic");
    let per_core_activity: Vec<u64> = sys.core_stats().iter().map(|s| s.l2_tlb_misses).collect();
    assert!(per_core_activity.iter().all(|&m| m > 0), "both cores were exercised: {per_core_activity:?}");
    // Pinned mode never context-switches.
    assert_eq!(sys.stats.context_switches, 0);
}

#[test]
fn multicore_runs_are_deterministic() {
    let cfg = SystemConfig::victima();
    let mut a = two_core(&cfg, SchedConfig::pinned(500));
    let mut b = two_core(&cfg, SchedConfig::pinned(500));
    a.run_with_warmup(2_000, 20_000);
    b.run_with_warmup(2_000, 20_000);
    for (sa, sb) in a.core_stats().iter().zip(b.core_stats()) {
        assert_eq!(*sa, sb, "identical constructions must replay identically");
    }
    let (pa, pb) = (a.proc_summaries(), b.proc_summaries());
    for (x, y) in pa.iter().zip(&pb) {
        assert_eq!(x.instructions, y.instructions);
        assert_eq!(x.ipc.to_bits(), y.ipc.to_bits(), "bit-exact IPC");
    }
}

#[test]
fn slot_seeding_separates_identical_workloads() {
    // Two RND instances in one mix must not stream in lockstep; if they
    // did, their per-core stats would be identical.
    let cfg = SystemConfig::radix();
    let w = vec![
        registry::by_name_seeded("RND", Scale::Tiny, sim::slot_seed(cfg.seed, 0)).unwrap(),
        registry::by_name_seeded("RND", Scale::Tiny, sim::slot_seed(cfg.seed, 1)).unwrap(),
    ];
    let mut sys = MultiCoreSystem::new(&cfg, w, 2, SchedConfig::pinned(500));
    sys.run_with_warmup(1_000, 10_000);
    let stats = sys.core_stats();
    assert_ne!(*stats[0], *stats[1], "distinct slot seeds must desynchronise the streams");
}

#[test]
fn oversubscription_context_switches_under_every_policy() {
    for policy in [CtxSwitchPolicy::AsidTagged, CtxSwitchPolicy::AsidSelective, CtxSwitchPolicy::FullFlush] {
        let cfg = SystemConfig::radix();
        let w = ["RND", "XS", "BFS"]
            .iter()
            .enumerate()
            .map(|(i, n)| registry::by_name_seeded(n, Scale::Tiny, sim::slot_seed(cfg.seed, i)).unwrap())
            .collect();
        // 3 processes over 2 cores.
        let mut sys = MultiCoreSystem::new(&cfg, w, 2, SchedConfig::round_robin(500, policy));
        sys.run_with_warmup(1_000, 10_000);
        assert!(sys.stats.context_switches > 0, "{policy:?}: oversubscription must switch");
        for p in sys.proc_summaries() {
            assert!(p.instructions >= 10_000, "{policy:?}/{}: every process finishes", p.workload);
        }
    }
}

#[test]
fn flush_policies_order_by_cost() {
    // Full flush can only hurt relative to ASID-tagged hardware: same
    // schedule, strictly less warm TLB state after every switch.
    let run = |policy| {
        let cfg = SystemConfig::radix();
        let w = ["RND", "XS", "BFS"]
            .iter()
            .enumerate()
            .map(|(i, n)| registry::by_name_seeded(n, Scale::Tiny, sim::slot_seed(cfg.seed, i)).unwrap())
            .collect();
        let mut sys = MultiCoreSystem::new(&cfg, w, 2, SchedConfig::round_robin(500, policy));
        sys.run_with_warmup(2_000, 20_000);
        sys.core_stats().iter().map(|s| s.l2_tlb_misses).sum::<u64>()
    };
    let tagged = run(CtxSwitchPolicy::AsidTagged);
    let flush = run(CtxSwitchPolicy::FullFlush);
    assert!(flush > tagged, "full flush must cost TLB misses: tagged={tagged} flush={flush}");
}

#[test]
fn inter_core_shootdown_reaches_every_core() {
    let cfg = SystemConfig::victima();
    let mut sys = two_core(&cfg, SchedConfig::pinned(500));
    sys.run(5_000);
    // Migrate a page of process 0 (its code region base is always mapped
    // 4KB) and let the broadcast clean up all cores.
    let va = VirtAddr::new(0x2000_0000);
    let old = sys.cores()[0].ground_truth(va).expect("code page mapped");
    let new = sys.migrate_page(0, va);
    assert_ne!(new, old);
    assert_eq!(sys.stats.migrations, 1);
    assert!(sys.stats.shootdown_invalidations > 0, "the owning core held the entry");
    assert_eq!(sys.cores()[0].ground_truth(va), Some(new));
    // Run on: no stale-translation panics, all cores still make progress.
    sys.run(2_000);
}

#[test]
fn run_mix_pinned_reports_every_slot() {
    let mix = mixes::by_name("MIX2-A").expect("committed mix");
    let res = run_mix_pinned(&SystemConfig::victima(), mix, Scale::Tiny, 500, 1_000, 10_000);
    assert_eq!(res.mix, "MIX2-A");
    assert_eq!(res.config_name, "Victima");
    assert_eq!(res.procs.len(), 2);
    assert_eq!(res.cores.len(), 2);
    assert!(res.procs.iter().all(|p| p.instructions >= 10_000 && p.ipc > 0.0));
}
