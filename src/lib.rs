//! # victima-repro
//!
//! A from-scratch Rust reproduction of **Victima: Drastically Increasing
//! Address Translation Reach by Leveraging Underutilized Cache Resources**
//! (Kanellopoulos et al., MICRO 2023).
//!
//! This facade crate re-exports the workspace's public API and hosts the
//! runnable examples (`examples/`) and the cross-crate integration and
//! property tests (`tests/`). The heavy lifting happens in:
//!
//! - [`types`] (`vm-types`) — addresses, page sizes, deterministic RNG;
//! - [`mem`] (`mem-sim`) — typed-block caches, prefetchers, DRAM;
//! - [`pt`] (`page-table`) — radix page tables, frame allocation, the
//!   nested/shadow virtualisation substrate;
//! - [`tlb`] (`tlb-sim`) — TLBs, page-walk caches, the hardware walker,
//!   POM-TLB;
//! - [`victima`] — the paper's contribution: TLB blocks in the L2 cache,
//!   the PTW cost predictor, the TLB-aware SRRIP policy, and the Table 2
//!   predictor design study;
//! - [`sim`] — the full-system simulator and every evaluated system;
//! - `workloads` — procedural analogues of the 11 evaluated workloads,
//!   plus the `trace:<path>` replay frontend;
//! - [`trace`] (`victima-trace`) — the compact `.vtrace` binary trace
//!   format: recorder, replay reader, chunked delta/varint codec;
//! - [`report`] — the typed results pipeline: experiment reports with
//!   units and provenance, JSON/CSV/text/markdown renderers, and the
//!   baseline `--check` regression gate;
//! - [`svc`] (`victima-svc`) — the resident sweep service: NDJSON
//!   protocol, content-addressed result cache, job journal, and
//!   process-sharded workers behind `experiments serve`.
//!
//! # Quickstart
//!
//! Sweeps run as batches on the parallel engine — build the specs, hand
//! them to a [`sim::SimEngine`], read results back in submission order:
//!
//! ```
//! use victima_repro::sim::{RunSpec, SimEngine, SystemConfig};
//! use victima_repro::workloads::Scale;
//!
//! let specs = [SystemConfig::radix(), SystemConfig::victima()]
//!     .map(|cfg| RunSpec::new("RND", cfg, Scale::Tiny, 10_000, 100_000));
//! let results = SimEngine::new().run_batch(specs.to_vec());
//! assert!(results[1].stats.speedup_over(&results[0].stats) > 1.0);
//! ```

pub use mem_sim as mem;
pub use page_table as pt;
pub use report;
pub use sim;
pub use svc;
pub use tlb_sim as tlb;
pub use victima;
pub use victima_trace as trace;
pub use vm_types as types;
pub use workloads;
